//! TCP soak driver for the CI `soak` job: N concurrent clients × M
//! commands each against a running `dbwipes-server`, failing on any
//! dropped reply or any non-`busy` error.
//!
//! ```text
//! soak_client --addr HOST:PORT [--clients 64] [--commands 50]
//!             [--appenders 0] [--append-rows 32] [--slow-loris 0]
//!             [--stats-out PATH] [--expect-busy] [--expect-degraded]
//!             [--shutdown]
//! ```
//!
//! Every client holds one connection for its whole command script, so
//! `--clients` is also the offered connection concurrency. A `busy`
//! admission reply (the executor's backpressure: queue full or connection
//! cap) is *not* a failure — the client backs off and reconnects, exactly
//! as the protocol intends — but every command sent on an admitted
//! connection must be answered `ok:true`, in order, with its echoed id.
//!
//! With `--appenders N` (the streaming-ingestion phase), N additional
//! writer clients run *concurrently* with the readers, each sending
//! `--commands` `stream_append` batches of `--append-rows` sensor rows.
//! A witness session opened before the fleet holds a displayed query
//! result across every append; after the fleet drains the client asserts
//! the post-soak equality gate: the witness's re-run query and row count
//! must be identical to a session opened cold after the soak, the total
//! row count must equal the seed plus exactly `appenders x commands x
//! append_rows` (no batch lost, none double-applied), and the server's
//! cache counters must show the appends were absorbed, not rebuilt.
//!
//! With `--slow-loris N` (the fault-tolerance mix), N misbehaving clients
//! run concurrently with the fast fleet: each sends a *partial* request
//! line and then trickles one byte at a time, never finishing the line —
//! the attack shape the idle timeout cannot catch, because every byte
//! resets the idle clock. Each must be closed with the structured
//! `read_timeout:true` notice within the server's per-line read deadline,
//! and the fast clients must stay at zero failures throughout — a pinned
//! pool slot would surface as reader timeouts or lost replies.
//!
//! After the fleet drains, one control connection captures the server's
//! `stats` reply (written to `--stats-out` for the job's artifact upload),
//! optionally asserts that backpressure was actually observed
//! (`--expect-busy`, used when `clients` exceeds the pool+queue capacity),
//! optionally asserts the fault-injection soak actually degraded and then
//! self-healed persistence (`--expect-degraded`: `health.degraded_entries
//! ≥ 1` and final `health.degraded == false`), and optionally sends the
//! `shutdown` ctrl-line (`--shutdown`) so the harness can assert the
//! server exits 0.

use dbwipes_server::{Json, LineClient};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    clients: usize,
    commands: usize,
    appenders: usize,
    append_rows: usize,
    slow_loris: usize,
    stats_out: Option<String>,
    expect_busy: bool,
    expect_degraded: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: String::new(),
        clients: 64,
        commands: 50,
        appenders: 0,
        append_rows: 32,
        slow_loris: 0,
        stats_out: None,
        expect_busy: false,
        expect_degraded: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--clients" => {
                options.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--commands" => {
                options.commands =
                    value("--commands")?.parse().map_err(|e| format!("--commands: {e}"))?
            }
            "--appenders" => {
                options.appenders =
                    value("--appenders")?.parse().map_err(|e| format!("--appenders: {e}"))?
            }
            "--append-rows" => {
                options.append_rows =
                    value("--append-rows")?.parse().map_err(|e| format!("--append-rows: {e}"))?
            }
            "--slow-loris" => {
                options.slow_loris =
                    value("--slow-loris")?.parse().map_err(|e| format!("--slow-loris: {e}"))?
            }
            "--stats-out" => options.stats_out = Some(value("--stats-out")?),
            "--expect-busy" => options.expect_busy = true,
            "--expect-degraded" => options.expect_degraded = true,
            "--shutdown" => options.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: soak_client --addr HOST:PORT [--clients N] [--commands N] \
                     [--appenders N] [--append-rows N] [--slow-loris N] \
                     [--stats-out PATH] [--expect-busy] [--expect-degraded] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(options)
}

/// Connects and probes with `ping` until admitted, treating `busy` replies
/// as back-off-and-retry. Reports how many admissions were refused.
fn connect_admitted(addr: &str, busy_retries: &mut u64) -> Result<LineClient, String> {
    const MAX_ATTEMPTS: usize = 50_000;
    for attempt in 0..MAX_ATTEMPTS {
        let mut conn = LineClient::connect(addr, Duration::from_secs(60))?;
        match conn.roundtrip(r#"{"cmd":"ping"}"#) {
            Ok(reply) if reply.get("pong") == Some(&Json::Bool(true)) => return Ok(conn),
            Ok(reply) if reply.get("busy") == Some(&Json::Bool(true)) => {
                *busy_retries += 1;
                // The protocol requires every busy reply to carry a
                // server-derived backoff hint; a missing one is a
                // protocol violation, not something to paper over.
                let Some(hint) = reply.get("retry_after_ms").and_then(Json::as_u64) else {
                    return Err(format!("busy reply without retry_after_ms: {reply}"));
                };
                // Honor the hint (capped so a soak run cannot stall), plus
                // a little jitter so the fleet does not retry in lockstep.
                std::thread::sleep(Duration::from_millis(hint.min(100) + (attempt as u64 % 7)));
            }
            Ok(reply) => return Err(format!("non-busy admission error: {reply}")),
            // The server may also close a rejected socket as we write the
            // probe; indistinguishable from busy at this layer, so retry.
            Err(_) => {
                *busy_retries += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    Err(format!("never admitted after {MAX_ATTEMPTS} attempts"))
}

/// One client's script: admission probe, `open_session`, then the command
/// loop (state probes against its session), `close_session`. Every command
/// carries an id and must come back `ok:true` with that id echoed.
fn run_client(addr: &str, commands: usize) -> Result<u64, String> {
    let mut busy_retries = 0;
    let mut conn = connect_admitted(addr, &mut busy_retries)?;
    let session = conn
        .roundtrip(r#"{"cmd":"open_session","id":"open"}"#)?
        .get("session")
        .and_then(Json::as_u64)
        .ok_or("open_session carried no id")?;
    for i in 0..commands {
        let line = format!(r#"{{"cmd":"state","session":{session},"id":{i}}}"#);
        let reply = conn.roundtrip(&line)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("command {i} failed: {reply}"));
        }
        if reply.get("id").and_then(Json::as_u64) != Some(i as u64) {
            return Err(format!("command {i} lost its id: {reply}"));
        }
    }
    let closed = conn.roundtrip(&format!(r#"{{"cmd":"close_session","session":{session}}}"#))?;
    if closed.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("close_session failed: {closed}"));
    }
    Ok(busy_retries)
}

/// The demo sensor table's window query — the statement the witness
/// session keeps displayed across every concurrent append, and the one a
/// cold post-soak session must answer identically.
const WINDOW_SQL: &str = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp \
                          FROM readings GROUP BY window ORDER BY window";
const COUNT_SQL: &str = "SELECT count(*) FROM readings";

fn open_session(conn: &mut LineClient) -> Result<u64, String> {
    conn.roundtrip(r#"{"cmd":"open_session"}"#)?
        .get("session")
        .and_then(Json::as_u64)
        .ok_or_else(|| "open_session carried no id".to_string())
}

/// Runs `sql` in `session` and returns the reply's `rows` array.
fn query_rows(conn: &mut LineClient, session: u64, sql: &str) -> Result<Json, String> {
    let reply =
        conn.roundtrip(&format!(r#"{{"cmd":"run_query","session":{session},"sql":"{sql}"}}"#))?;
    if reply.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("run_query failed: {reply}"));
    }
    reply.get("rows").cloned().ok_or_else(|| format!("run_query reply carried no rows: {reply}"))
}

/// Extracts the single scalar of a `count(*)` result.
fn single_count(rows: &Json) -> Result<u64, String> {
    rows.as_array()
        .and_then(|rows| rows.first())
        .and_then(Json::as_array)
        .and_then(|row| row.first())
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("not a count(*) result: {rows}"))
}

/// One writer's script: `--commands` `stream_append` batches of
/// `rows_per_batch` sensor readings, every reply checked for the echoed
/// id and the exact per-batch row count.
fn run_appender(
    addr: &str,
    batches: usize,
    rows_per_batch: usize,
    seed: usize,
) -> Result<u64, String> {
    let mut busy_retries = 0;
    let mut conn = connect_admitted(addr, &mut busy_retries)?;
    for i in 0..batches {
        let rows: Vec<String> = (0..rows_per_batch)
            .map(|r| {
                // Valid against the demo sensor schema: sensorid, epoch,
                // hour, window, temp, humidity, light, voltage.
                let sensor = (seed * 31 + i * 7 + r) % 24;
                let temp = 40.0 + ((seed + i + r) % 32) as f64 / 2.0;
                format!("[{sensor},0,0,0,{temp:.1},40.0,300.0,2.5]")
            })
            .collect();
        let line = format!(
            r#"{{"cmd":"stream_append","table":"readings","rows":[{}],"id":{i}}}"#,
            rows.join(",")
        );
        let reply = conn.roundtrip(&line)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("append batch {i} failed: {reply}"));
        }
        if reply.get("id").and_then(Json::as_u64) != Some(i as u64) {
            return Err(format!("append batch {i} lost its id: {reply}"));
        }
        if reply.get("appended").and_then(Json::as_u64) != Some(rows_per_batch as u64) {
            return Err(format!("append batch {i} applied the wrong row count: {reply}"));
        }
    }
    Ok(busy_retries)
}

/// One slow-loris client's script: send a *partial* request line, then
/// trickle one byte at a time — never the newline. Every byte resets the
/// server's idle clock, so only the per-line read deadline can end this
/// connection; success is the structured `read_timeout:true` notice. A
/// `busy` admission bounce reconnects and retries like every other
/// client.
fn run_slow_loris(addr: &str) -> Result<u64, String> {
    use std::io::{ErrorKind, Read, Write};
    const MAX_ATTEMPTS: usize = 1_000;
    let mut busy_retries = 0;
    for _ in 0..MAX_ATTEMPTS {
        let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(Duration::from_millis(50))).map_err(|e| e.to_string())?;
        stream.write_all(br#"{"cmd":"ping""#).map_err(|e| e.to_string())?;
        let start = Instant::now();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 512];
        let mut closed = false;
        while !closed && !buf.contains(&b'\n') {
            if start.elapsed() > Duration::from_secs(120) {
                return Err("slow-loris line was never closed with a notice".to_string());
            }
            // The trickle: one more byte of the never-ending line. Write
            // errors just mean the server already closed on us.
            let _ = stream.write_all(b" ");
            match stream.read(&mut chunk) {
                Ok(0) => closed = true,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => closed = true,
            }
        }
        let text = String::from_utf8_lossy(&buf);
        if text.contains(r#""busy":true"#) {
            busy_retries += 1;
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        if !text.contains(r#""read_timeout":true"#) {
            return Err(format!(
                "slow-loris connection ended without a read_timeout notice: {text:?}"
            ));
        }
        return Ok(busy_retries);
    }
    Err(format!("slow-loris never admitted after {MAX_ATTEMPTS} attempts"))
}

/// Opens the witness before any appender runs: a session holding the
/// window query displayed, so every concurrent `stream_append` must
/// refresh it in place. The connection is dropped (sessions outlive
/// connections; an idle one would hog a pool worker for the whole fleet
/// run) — only the session id and the seed row count come back.
fn witness_open(addr: &str) -> Result<(u64, u64), String> {
    let mut busy = 0;
    let mut conn = connect_admitted(addr, &mut busy)?;
    let session = open_session(&mut conn)?;
    let seed_count = single_count(&query_rows(&mut conn, session, COUNT_SQL)?)?;
    query_rows(&mut conn, session, WINDOW_SQL)?;
    Ok((session, seed_count))
}

/// The post-soak equality gate: the witness (refreshed in place across
/// every append) and a session opened cold after the soak must agree on
/// the window query bit for bit and on the exact row count — seed plus
/// `expected_appended`, proving no batch was lost or double-applied.
fn witness_verify(
    addr: &str,
    session: u64,
    seed_count: u64,
    expected_appended: u64,
) -> Result<(), String> {
    let mut busy = 0;
    let mut witness = connect_admitted(addr, &mut busy)?;
    let witness_rows = query_rows(&mut witness, session, WINDOW_SQL)?;
    let witness_count = single_count(&query_rows(&mut witness, session, COUNT_SQL)?)?;
    drop(witness);
    let mut cold = connect_admitted(addr, &mut busy)?;
    let cold_session = open_session(&mut cold)?;
    let cold_rows = query_rows(&mut cold, cold_session, WINDOW_SQL)?;
    let cold_count = single_count(&query_rows(&mut cold, cold_session, COUNT_SQL)?)?;
    let expected = seed_count + expected_appended;
    if witness_count != expected || cold_count != expected {
        return Err(format!(
            "row counts diverged: witness {witness_count}, cold {cold_count}, expected {expected}"
        ));
    }
    if witness_rows != cold_rows {
        return Err(format!(
            "window query diverged between the refreshed witness and a cold session:\n\
             witness: {witness_rows}\ncold:    {cold_rows}"
        ));
    }
    println!(
        "soak_client: append gate ok — witness and cold sessions agree on {expected} rows \
         ({expected_appended} streamed)"
    );
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("soak_client: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "soak_client: {} clients x {} commands (+{} appenders x {} rows, {} slow-loris) \
         against {}",
        options.clients,
        options.commands,
        options.appenders,
        options.append_rows,
        options.slow_loris,
        options.addr
    );

    // The streaming phase's witness must be live *before* any appender:
    // its displayed result is what every stream_append refreshes.
    let witness = if options.appenders > 0 {
        match witness_open(&options.addr) {
            Ok(witness) => Some(witness),
            Err(e) => {
                eprintln!("soak_client: witness session failed to open: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let start = Instant::now();
    let results: Vec<Result<u64, String>> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..options.clients)
            .map(|_| {
                let addr = options.addr.as_str();
                let commands = options.commands;
                scope.spawn(move || run_client(addr, commands))
            })
            .collect();
        let appenders: Vec<_> = (0..options.appenders)
            .map(|seed| {
                let addr = options.addr.as_str();
                let (commands, rows) = (options.commands, options.append_rows);
                scope.spawn(move || run_appender(addr, commands, rows, seed))
            })
            .collect();
        let slow: Vec<_> = (0..options.slow_loris)
            .map(|_| {
                let addr = options.addr.as_str();
                scope.spawn(move || run_slow_loris(addr))
            })
            .collect();
        readers
            .into_iter()
            .chain(appenders)
            .chain(slow)
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut failures = 0;
    let mut busy_retries = 0;
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(retries) => busy_retries += retries,
            Err(e) => {
                eprintln!("soak_client: client {i} FAILED: {e}");
                failures += 1;
            }
        }
    }
    let fleet = options.clients + options.appenders + options.slow_loris;
    let total_commands = options.clients * (options.commands + 2) // + open/close
        + options.appenders * options.commands;
    println!(
        "soak_client: {} clients done in {elapsed:.2?} ({:.0} commands/s), \
         {busy_retries} busy admission retries, {failures} failures",
        fleet - failures,
        total_commands as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    );
    if failures > 0 {
        return ExitCode::FAILURE;
    }

    if let Some((session, seed_count)) = witness {
        let streamed = (options.appenders * options.commands * options.append_rows) as u64;
        if let Err(e) = witness_verify(&options.addr, session, seed_count, streamed) {
            eprintln!("soak_client: append equality gate FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Fleet drained: capture the server's stats for the job artifact.
    let mut control_busy = 0;
    let mut control = match connect_admitted(&options.addr, &mut control_busy) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("soak_client: control connection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match control.roundtrip(r#"{"cmd":"stats"}"#) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("soak_client: stats failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("soak_client: server stats: {stats}");
    if let Some(path) = &options.stats_out {
        if let Err(e) = std::fs::write(path, format!("{stats}\n")) {
            eprintln!("soak_client: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("soak_client: stats written to {path}");
    }
    if options.appenders > 0 && options.appenders * options.commands >= 2 {
        // With a witness result displayed, the first append builds its
        // cache and every later one must fast-forward it — the counter
        // staying at zero would mean appends rebuild instead of absorb.
        let absorbs = stats
            .get("cache")
            .and_then(|c| c.get("append_absorbs"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if absorbs == 0 {
            eprintln!(
                "soak_client: {} appends streamed but cache.append_absorbs is 0 — \
                 the append path rebuilt instead of absorbing",
                options.appenders * options.commands
            );
            return ExitCode::FAILURE;
        }
        println!("soak_client: {absorbs} cache absorbs across the append phase");
    }
    if options.expect_degraded {
        let health = stats.get("health");
        let entries =
            health.and_then(|h| h.get("degraded_entries")).and_then(Json::as_u64).unwrap_or(0);
        let degraded_now = health.and_then(|h| h.get("degraded")) == Some(&Json::Bool(true));
        if entries == 0 {
            eprintln!(
                "soak_client: --expect-degraded, but health.degraded_entries is 0 — \
                 the fault plan never broke persistence"
            );
            return ExitCode::FAILURE;
        }
        if degraded_now {
            eprintln!(
                "soak_client: --expect-degraded, but the server is still degraded — \
                 persistence never self-healed"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "soak_client: degraded-mode gate ok — {entries} degradation(s), healed by the end"
        );
    }
    if options.expect_busy {
        let rejected =
            stats.get("pool").and_then(|p| p.get("rejected")).and_then(Json::as_u64).unwrap_or(0);
        if rejected == 0 && busy_retries == 0 {
            eprintln!(
                "soak_client: --expect-busy, but the pool reports 0 rejections and no client \
                 saw a busy reply — the queue never saturated"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "soak_client: backpressure observed ({rejected} rejected admissions, \
             {busy_retries} client-side busy retries)"
        );
    }
    if options.shutdown {
        match control.roundtrip(r#"{"cmd":"shutdown"}"#) {
            Ok(reply) if reply.get("shutting_down") == Some(&Json::Bool(true)) => {
                println!("soak_client: shutdown ctrl-line acknowledged");
            }
            Ok(reply) => {
                eprintln!("soak_client: unexpected shutdown reply: {reply}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("soak_client: shutdown failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

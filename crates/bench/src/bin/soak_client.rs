//! TCP soak driver for the CI `soak` job: N concurrent clients × M
//! commands each against a running `dbwipes-server`, failing on any
//! dropped reply or any non-`busy` error.
//!
//! ```text
//! soak_client --addr HOST:PORT [--clients 64] [--commands 50]
//!             [--stats-out PATH] [--expect-busy] [--shutdown]
//! ```
//!
//! Every client holds one connection for its whole command script, so
//! `--clients` is also the offered connection concurrency. A `busy`
//! admission reply (the executor's backpressure: queue full or connection
//! cap) is *not* a failure — the client backs off and reconnects, exactly
//! as the protocol intends — but every command sent on an admitted
//! connection must be answered `ok:true`, in order, with its echoed id.
//!
//! After the fleet drains, one control connection captures the server's
//! `stats` reply (written to `--stats-out` for the job's artifact upload),
//! optionally asserts that backpressure was actually observed
//! (`--expect-busy`, used when `clients` exceeds the pool+queue capacity),
//! and optionally sends the `shutdown` ctrl-line (`--shutdown`) so the
//! harness can assert the server exits 0.

use dbwipes_server::{Json, LineClient};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    clients: usize,
    commands: usize,
    stats_out: Option<String>,
    expect_busy: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: String::new(),
        clients: 64,
        commands: 50,
        stats_out: None,
        expect_busy: false,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--clients" => {
                options.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--commands" => {
                options.commands =
                    value("--commands")?.parse().map_err(|e| format!("--commands: {e}"))?
            }
            "--stats-out" => options.stats_out = Some(value("--stats-out")?),
            "--expect-busy" => options.expect_busy = true,
            "--shutdown" => options.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: soak_client --addr HOST:PORT [--clients N] [--commands N] \
                     [--stats-out PATH] [--expect-busy] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(options)
}

/// Connects and probes with `ping` until admitted, treating `busy` replies
/// as back-off-and-retry. Reports how many admissions were refused.
fn connect_admitted(addr: &str, busy_retries: &mut u64) -> Result<LineClient, String> {
    const MAX_ATTEMPTS: usize = 50_000;
    for attempt in 0..MAX_ATTEMPTS {
        let mut conn = LineClient::connect(addr, Duration::from_secs(60))?;
        match conn.roundtrip(r#"{"cmd":"ping"}"#) {
            Ok(reply) if reply.get("pong") == Some(&Json::Bool(true)) => return Ok(conn),
            Ok(reply) if reply.get("busy") == Some(&Json::Bool(true)) => {
                *busy_retries += 1;
                // The protocol requires every busy reply to carry a
                // server-derived backoff hint; a missing one is a
                // protocol violation, not something to paper over.
                let Some(hint) = reply.get("retry_after_ms").and_then(Json::as_u64) else {
                    return Err(format!("busy reply without retry_after_ms: {reply}"));
                };
                // Honor the hint (capped so a soak run cannot stall), plus
                // a little jitter so the fleet does not retry in lockstep.
                std::thread::sleep(Duration::from_millis(hint.min(100) + (attempt as u64 % 7)));
            }
            Ok(reply) => return Err(format!("non-busy admission error: {reply}")),
            // The server may also close a rejected socket as we write the
            // probe; indistinguishable from busy at this layer, so retry.
            Err(_) => {
                *busy_retries += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    Err(format!("never admitted after {MAX_ATTEMPTS} attempts"))
}

/// One client's script: admission probe, `open_session`, then the command
/// loop (state probes against its session), `close_session`. Every command
/// carries an id and must come back `ok:true` with that id echoed.
fn run_client(addr: &str, commands: usize) -> Result<u64, String> {
    let mut busy_retries = 0;
    let mut conn = connect_admitted(addr, &mut busy_retries)?;
    let session = conn
        .roundtrip(r#"{"cmd":"open_session","id":"open"}"#)?
        .get("session")
        .and_then(Json::as_u64)
        .ok_or("open_session carried no id")?;
    for i in 0..commands {
        let line = format!(r#"{{"cmd":"state","session":{session},"id":{i}}}"#);
        let reply = conn.roundtrip(&line)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("command {i} failed: {reply}"));
        }
        if reply.get("id").and_then(Json::as_u64) != Some(i as u64) {
            return Err(format!("command {i} lost its id: {reply}"));
        }
    }
    let closed = conn.roundtrip(&format!(r#"{{"cmd":"close_session","session":{session}}}"#))?;
    if closed.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("close_session failed: {closed}"));
    }
    Ok(busy_retries)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("soak_client: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "soak_client: {} clients x {} commands against {}",
        options.clients, options.commands, options.addr
    );
    let start = Instant::now();
    let results: Vec<Result<u64, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|_| {
                let addr = options.addr.as_str();
                let commands = options.commands;
                scope.spawn(move || run_client(addr, commands))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let elapsed = start.elapsed();

    let mut failures = 0;
    let mut busy_retries = 0;
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(retries) => busy_retries += retries,
            Err(e) => {
                eprintln!("soak_client: client {i} FAILED: {e}");
                failures += 1;
            }
        }
    }
    let total_commands = options.clients * (options.commands + 2); // + open/close
    println!(
        "soak_client: {} clients done in {elapsed:.2?} ({:.0} commands/s), \
         {busy_retries} busy admission retries, {failures} failures",
        options.clients - failures,
        total_commands as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
    );
    if failures > 0 {
        return ExitCode::FAILURE;
    }

    // Fleet drained: capture the server's stats for the job artifact.
    let mut control_busy = 0;
    let mut control = match connect_admitted(&options.addr, &mut control_busy) {
        Ok(conn) => conn,
        Err(e) => {
            eprintln!("soak_client: control connection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = match control.roundtrip(r#"{"cmd":"stats"}"#) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("soak_client: stats failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("soak_client: server stats: {stats}");
    if let Some(path) = &options.stats_out {
        if let Err(e) = std::fs::write(path, format!("{stats}\n")) {
            eprintln!("soak_client: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("soak_client: stats written to {path}");
    }
    if options.expect_busy {
        let rejected =
            stats.get("pool").and_then(|p| p.get("rejected")).and_then(Json::as_u64).unwrap_or(0);
        if rejected == 0 && busy_retries == 0 {
            eprintln!(
                "soak_client: --expect-busy, but the pool reports 0 rejections and no client \
                 saw a busy reply — the queue never saturated"
            );
            return ExitCode::FAILURE;
        }
        println!(
            "soak_client: backpressure observed ({rejected} rejected admissions, \
             {busy_retries} client-side busy retries)"
        );
    }
    if options.shutdown {
        match control.roundtrip(r#"{"cmd":"shutdown"}"#) {
            Ok(reply) if reply.get("shutting_down") == Some(&Json::Bool(true)) => {
                println!("soak_client: shutdown ctrl-line acknowledged");
            }
            Ok(reply) => {
                eprintln!("soak_client: unexpected shutdown reply: {reply}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("soak_client: shutdown failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Experiment E7: the paper states DBWipes "currently supports the common
//! PostgreSQL aggregates (e.g., avg, sum, min, max, and stddev)". This
//! report measures every supported aggregate with and without lineage
//! capture, i.e. the provenance overhead the engine pays to make ranked
//! provenance possible.

use dbwipes_bench::{fmt, print_table, run_query, run_query_without_lineage, sensor_dataset};
use std::time::Instant;

fn main() {
    let dataset = sensor_dataset(216_000);
    let aggregates = [
        "avg(temp)",
        "sum(temp)",
        "count(*)",
        "min(temp)",
        "max(temp)",
        "stddev(temp)",
        "variance(temp)",
    ];
    let mut rows = Vec::new();
    for agg in aggregates {
        let sql = format!("SELECT window, {agg} FROM readings GROUP BY window");
        // Warm up once, then time a few repetitions of each mode.
        let _ = run_query(&dataset.table, &sql);
        let reps = 5;
        let start = Instant::now();
        let mut groups = 0;
        for _ in 0..reps {
            groups = run_query(&dataset.table, &sql).len();
        }
        let with_ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = run_query_without_lineage(&dataset.table, &sql);
        }
        let without_ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let overhead = if without_ms > 0.0 { (with_ms / without_ms - 1.0) * 100.0 } else { 0.0 };
        rows.push(vec![
            agg.to_string(),
            groups.to_string(),
            fmt(without_ms),
            fmt(with_ms),
            format!("{overhead:+.1}%"),
        ]);
    }
    print_table(
        "E7: aggregate execution with vs. without lineage capture (216k readings, ms per query)",
        &["aggregate", "groups", "no_lineage_ms", "lineage_ms", "overhead"],
        &rows,
    );
    println!("\nPaper expectation: all of avg/sum/count/min/max/stddev are supported; capturing");
    println!("fine-grained lineage costs a modest constant factor over plain execution, which is");
    println!("the price DBWipes pays so that any output can later be explained.");
}

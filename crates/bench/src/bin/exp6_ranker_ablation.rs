//! Experiment E6: ablation of the Predicate Ranker's score terms and of the
//! Predicate Enumerator's splitting strategies (paper §2.2.2 design choices).

use dbwipes_bench::{fmt, print_table, sensor_dataset, sensor_explanation};
use dbwipes_core::{ExplainConfig, RankerConfig};
use dbwipes_learn::{SplitCriterion, TreeConfig};

fn main() {
    let dataset = sensor_dataset(54_000);

    // Part 1: ranker weight ablation.
    let weightings: [(&str, RankerConfig); 4] = [
        (
            "error improvement only",
            RankerConfig {
                weight_error: 1.0,
                weight_accuracy: 0.0,
                weight_complexity: 0.0,
                max_results: 10,
            },
        ),
        (
            "+ D' accuracy term",
            RankerConfig {
                weight_error: 1.0,
                weight_accuracy: 0.5,
                weight_complexity: 0.0,
                max_results: 10,
            },
        ),
        ("+ complexity penalty (default)", RankerConfig::default()),
        (
            "accuracy only (no error term)",
            RankerConfig {
                weight_error: 0.0,
                weight_accuracy: 1.0,
                weight_complexity: 0.05,
                max_results: 10,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, ranker) in weightings {
        let mut config = ExplainConfig::standard();
        config.ranker = ranker;
        let (_, explanation) = sensor_explanation(&dataset, config);
        let best = explanation.best().unwrap();
        let gt = dataset.truth.score_predicate(&dataset.table, &best.predicate);
        rows.push(vec![
            name.to_string(),
            best.predicate.to_string(),
            best.complexity.to_string(),
            fmt(best.improvement),
            fmt(best.example_f1),
            fmt(gt.f1),
        ]);
    }
    print_table(
        "E6a: Predicate Ranker weight ablation (sensor scenario, 54k readings)",
        &["ranking score", "top predicate", "terms", "improvement", "D'_f1", "gt_f1"],
        &rows,
    );

    // Part 2: splitting-strategy ablation (the paper's "m standard splitting
    // and pruning strategies").
    let strategies: [(&str, Vec<TreeConfig>); 4] = [
        (
            "gini only",
            vec![TreeConfig { criterion: SplitCriterion::Gini, ..TreeConfig::default() }],
        ),
        (
            "gain ratio only",
            vec![TreeConfig { criterion: SplitCriterion::GainRatio, ..TreeConfig::default() }],
        ),
        (
            "gini, unpruned depth 8",
            vec![TreeConfig {
                criterion: SplitCriterion::Gini,
                max_depth: 8,
                prune: false,
                ..TreeConfig::default()
            }],
        ),
        ("gini + gain ratio + shallow gini (default)", Vec::new()),
    ];
    let mut rows = Vec::new();
    for (name, trees) in strategies {
        let mut config = ExplainConfig::standard();
        if !trees.is_empty() {
            config.predicates.tree_configs = trees;
        }
        let (_, explanation) = sensor_explanation(&dataset, config);
        let best = explanation.best().unwrap();
        let gt = dataset.truth.score_predicate(&dataset.table, &best.predicate);
        rows.push(vec![
            name.to_string(),
            explanation.predicates.len().to_string(),
            best.predicate.to_string(),
            fmt(best.improvement),
            fmt(gt.f1),
        ]);
    }
    print_table(
        "E6b: Predicate Enumerator splitting-strategy ablation",
        &["tree strategies", "ranked predicates", "top predicate", "improvement", "gt_f1"],
        &rows,
    );
    println!(
        "\nPaper expectation: the error-improvement term is what pushes genuinely explanatory"
    );
    println!("predicates to the top; the accuracy term breaks ties toward predicates that agree");
    println!("with the user's examples; the complexity penalty keeps the descriptions short; and");
    println!(
        "using several splitting strategies yields a richer candidate pool than any single one."
    );
}

//! Figure 4 reproduction (experiment E2): the window-statistics view and the
//! zoom-to-tuples view of the Intel sensor scenario.
//!
//! Left panel: average and standard deviation of temperature per 30-minute
//! window, with the suspicious (high-stddev) windows flagged. Right panel:
//! the raw readings of those windows, split into the >100°F population the
//! user highlights as D′ and the rest.

use dbwipes_bench::{
    fmt, hot_readings, print_table, run_query, sensor_dataset, suspicious_windows,
};

fn main() {
    for &n in &[54_000usize, 216_000] {
        let dataset = sensor_dataset(n);
        let result = run_query(&dataset.table, &dataset.window_query());
        let suspicious = suspicious_windows(&result, 8.0);

        // Left panel: one row per window (capped for readability).
        let mut rows = Vec::new();
        for i in 0..result.len().min(24) {
            let window = result.value(i, "window").unwrap();
            let avg = result.value_f64(i, "avg_temp").unwrap().unwrap_or(f64::NAN);
            let std = result.value_f64(i, "std_temp").unwrap().unwrap_or(f64::NAN);
            rows.push(vec![
                window.to_string(),
                fmt(avg),
                fmt(std),
                if suspicious.contains(&i) { "<-- suspicious".to_string() } else { String::new() },
            ]);
        }
        print_table(
            &format!(
                "Figure 4 left / E2 ({n} readings): avg & stddev of temperature per 30-min window"
            ),
            &["window", "avg_temp", "std_temp", "flag"],
            &rows,
        );

        // Right panel: the zoomed tuple populations.
        let inputs = result.inputs_of_rows(&suspicious);
        let hot = hot_readings(&dataset, &result, &suspicious);
        let truly_corrupted = hot.iter().filter(|r| dataset.truth.is_error(**r)).count();
        print_table(
            "Figure 4 right / E2: zoomed-in tuples of the suspicious windows",
            &["population", "readings", "share"],
            &[
                vec![
                    "all tuples in suspicious windows (F)".into(),
                    inputs.len().to_string(),
                    fmt(1.0),
                ],
                vec![
                    "readings above 100F (user's D')".into(),
                    hot.len().to_string(),
                    fmt(hot.len() as f64 / inputs.len().max(1) as f64),
                ],
                vec![
                    "of which truly corrupted (ground truth)".into(),
                    truly_corrupted.to_string(),
                    fmt(truly_corrupted as f64 / hot.len().max(1) as f64),
                ],
            ],
        );
        println!(
            "\nsuspicious windows: {} of {} (std_temp > 8.0); paper expectation: a small set of",
            suspicious.len(),
            result.len()
        );
        println!("windows stands out with averages far above room temperature and inflated stddev,\nand zooming in exposes a cluster of >100F readings.\n");
    }
}

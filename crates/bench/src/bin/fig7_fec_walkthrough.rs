//! Figure 7 + §3.2 walkthrough reproduction (experiment E1).
//!
//! Regenerates the data behind Figure 7 — McCain's total received donations
//! per day — locates the negative spike around day 500, runs the ranked
//! provenance pipeline and reports where the "REATTRIBUTION TO SPOUSE"
//! predicate lands in the ranking and how much of the negative spike it
//! removes.

use dbwipes_bench::{fec_dataset, fec_explanation, fmt, print_table, run_query};
use dbwipes_core::{CleaningSession, ExplainConfig};

fn main() {
    let sizes = [20_000usize, 50_000, 100_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let dataset = fec_dataset(n);
        let result = run_query(&dataset.table, &dataset.daily_total_query());

        // Figure 7 shape: the minimum daily total is strongly negative and
        // occurs near the configured reattribution day.
        let (min_day, min_total) = (0..result.len())
            .map(|i| {
                (
                    result.value(i, "day").unwrap().as_i64().unwrap(),
                    result.value_f64(i, "total").unwrap().unwrap_or(0.0),
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let negative_days = (0..result.len())
            .filter(|&i| result.value_f64(i, "total").unwrap().unwrap_or(0.0) < 0.0)
            .count();

        let (_, explanation) = fec_explanation(&dataset, ExplainConfig::standard());
        let reattribution_rank = explanation
            .predicates
            .iter()
            .position(|p| p.predicate.to_string().contains("REATTRIBUTION"))
            .map(|r| (r + 1).to_string())
            .unwrap_or_else(|| "not found".to_string());
        let best = explanation.best().unwrap();

        // Click the best predicate and measure the remaining negative days.
        let mut session = CleaningSession::new(result.statement.clone());
        session.apply(best.predicate.clone());
        let cleaned = session.execute(&dataset.table).unwrap();
        let negative_after = (0..cleaned.len())
            .filter(|&i| cleaned.value_f64(i, "total").unwrap().unwrap_or(0.0) < 0.0)
            .count();
        let score = dataset.truth.score_predicate(&dataset.table, &best.predicate);

        rows.push(vec![
            n.to_string(),
            min_day.to_string(),
            fmt(min_total),
            negative_days.to_string(),
            reattribution_rank,
            best.predicate.to_string(),
            fmt(best.improvement),
            negative_after.to_string(),
            fmt(score.precision),
            fmt(score.recall),
        ]);
    }
    print_table(
        "Figure 7 / E1: FEC walkthrough — negative spike and the reattribution predicate",
        &[
            "rows",
            "spike_day",
            "spike_total",
            "neg_days",
            "reattr_rank",
            "top_predicate",
            "improvement",
            "neg_days_after",
            "precision",
            "recall",
        ],
        &rows,
    );
    println!(
        "\nPaper expectation: the spike sits near day 500, the top-ranked predicate references"
    );
    println!(
        "the memo string REATTRIBUTION TO SPOUSE, and clicking it removes the negative spike."
    );
}

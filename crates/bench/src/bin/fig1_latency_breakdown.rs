//! Figure 1 / experiment E4: per-component latency of the backend pipeline.
//!
//! The demo's pitch is a *tight interactive loop*: the time from "debug!" to
//! a ranked predicate list has to stay interactive. This report measures the
//! wall-clock share of each backend component (Preprocessor, Dataset
//! Enumerator, Predicate Enumerator, Predicate Ranker) as the input grows.

use dbwipes_bench::{fmt, print_table, sensor_dataset, sensor_explanation};
use dbwipes_core::ExplainConfig;

fn main() {
    let sizes = [27_000usize, 54_000, 108_000, 216_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let dataset = sensor_dataset(n);
        let start = std::time::Instant::now();
        let (result, explanation) = sensor_explanation(&dataset, ExplainConfig::standard());
        let end_to_end_ms = start.elapsed().as_secs_f64() * 1000.0;
        let t = explanation.timings;
        let f_size: usize = explanation.influence.influences.len();
        rows.push(vec![
            n.to_string(),
            result.len().to_string(),
            f_size.to_string(),
            fmt(t.preprocess_ms),
            fmt(t.enumerate_ms),
            fmt(t.predicates_ms),
            fmt(t.rank_ms),
            fmt(t.total_ms()),
            fmt(end_to_end_ms),
        ]);
    }
    print_table(
        "Figure 1 / E4: backend component latency vs. dataset size (sensor scenario, ms)",
        &[
            "readings",
            "groups",
            "|F|",
            "preprocess",
            "enumerate",
            "predicates",
            "rank",
            "pipeline_total",
            "incl_query",
        ],
        &rows,
    );
    println!("\nPaper expectation: the loop stays interactive (well under a few seconds) at demo");
    println!("scale; the Dataset/Predicate Enumerators dominate as |F| grows because they train");
    println!("subgroup-discovery rules and several decision trees per candidate dataset.");
}

//! # dbwipes-bench
//!
//! The experiment harness of the DBWipes reproduction. Every figure of the
//! paper and every quantitative experiment listed in DESIGN.md has:
//!
//! * a **report binary** in `src/bin/` (`cargo run --release -p dbwipes-bench
//!   --bin fig7_fec_walkthrough`, ...) that regenerates the figure's
//!   numbers / rows and prints them as a table, and
//! * a **Criterion bench** in `benches/` measuring the latency of the code
//!   paths involved (`cargo bench -p dbwipes-bench`).
//!
//! This library holds the pieces shared between them: deterministic dataset
//! construction, standard selections of S / D′ / ε for the two demo
//! scenarios, and small table-printing helpers.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use dbwipes_core::{
    explain_on_table, CleaningStrategy, ErrorMetric, ExplainConfig, Explanation, ExplanationRequest,
};
use dbwipes_data::{
    generate_corrupted, generate_fec, generate_sensor, CorruptedDataset, CorruptionConfig,
    FecConfig, FecDataset, SensorConfig, SensorDataset,
};
use dbwipes_engine::{execute, parse_select, ExecOptions, QueryResult};
use dbwipes_storage::RowId;

/// Builds the synthetic FEC dataset at a given size (other parameters are
/// the defaults used throughout the experiments).
pub fn fec_dataset(rows: usize) -> FecDataset {
    let reattribution = (rows / 125).clamp(40, 2_000);
    generate_fec(&FecConfig {
        num_contributions: rows,
        reattribution_count: reattribution,
        ..FecConfig::default()
    })
}

/// Builds the synthetic Intel-Lab sensor dataset at a given size.
pub fn sensor_dataset(readings: usize) -> SensorDataset {
    generate_sensor(&SensorConfig { num_readings: readings, ..SensorConfig::default() })
}

/// Builds the generic corrupted-measurements dataset used by the precision
/// and ablation experiments: two adjacent corrupted devices, corruption
/// across the whole group range so the true cause is purely attribute-based.
pub fn corrupted_dataset(rows: usize) -> CorruptedDataset {
    generate_corrupted(&CorruptionConfig {
        num_rows: rows,
        num_devices: 20,
        corrupted_devices: vec![7, 8],
        corruption_start_group: 0,
        corruption_shift: 150.0,
        ..CorruptionConfig::default()
    })
}

/// Executes a SQL string against a single table.
pub fn run_query(table: &dbwipes_storage::Table, sql: &str) -> QueryResult {
    let stmt = parse_select(sql).expect("valid experiment query");
    execute(table, &stmt, ExecOptions::default()).expect("experiment query executes")
}

/// Executes a SQL string with lineage capture disabled (used by the
/// provenance-overhead experiment).
pub fn run_query_without_lineage(table: &dbwipes_storage::Table, sql: &str) -> QueryResult {
    let stmt = parse_select(sql).expect("valid experiment query");
    execute(table, &stmt, ExecOptions { capture_lineage: false })
        .expect("experiment query executes")
}

/// The standard sensor-scenario selection: the windows whose temperature
/// spread exceeds `std_threshold`.
pub fn suspicious_windows(result: &QueryResult, std_threshold: f64) -> Vec<usize> {
    (0..result.len())
        .filter(|&i| result.value_f64(i, "std_temp").unwrap_or(None).unwrap_or(0.0) > std_threshold)
        .collect()
}

/// The standard sensor-scenario D′: readings above 100°F among the inputs of
/// the selected windows.
pub fn hot_readings(
    dataset: &SensorDataset,
    result: &QueryResult,
    suspicious: &[usize],
) -> Vec<RowId> {
    result
        .inputs_of_rows(suspicious)
        .into_iter()
        .filter(|&r| {
            dataset
                .table
                .value_by_name(r, "temp")
                .ok()
                .and_then(|v| v.as_f64())
                .map(|t| t > 100.0)
                .unwrap_or(false)
        })
        .collect()
}

/// Runs the full sensor-scenario pipeline (Figure 4 → Figure 6) and returns
/// the query result together with the explanation.
pub fn sensor_explanation(
    dataset: &SensorDataset,
    config: ExplainConfig,
) -> (QueryResult, Explanation) {
    let result = run_query(&dataset.table, &dataset.window_query());
    let suspicious = suspicious_windows(&result, 8.0);
    assert!(!suspicious.is_empty(), "no suspicious windows in the generated sensor data");
    let examples = hot_readings(dataset, &result, &suspicious);
    let mut request =
        ExplanationRequest::new(suspicious, examples, ErrorMetric::too_high("std_temp", 5.0));
    request.config = config;
    let explanation =
        explain_on_table(&dataset.table, &result, &request).expect("sensor explanation");
    (result, explanation)
}

/// Runs the full FEC walkthrough pipeline (Figure 7 / §3.2) and returns the
/// query result together with the explanation.
pub fn fec_explanation(dataset: &FecDataset, config: ExplainConfig) -> (QueryResult, Explanation) {
    let result = run_query(&dataset.table, &dataset.daily_total_query());
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "total").unwrap_or(None).unwrap_or(0.0) < 0.0)
        .collect();
    assert!(!suspicious.is_empty(), "no negative-total days in the generated FEC data");
    let examples: Vec<RowId> = result
        .inputs_of_rows(&suspicious)
        .into_iter()
        .filter(|&r| {
            dataset
                .table
                .value_by_name(r, "amount")
                .ok()
                .and_then(|v| v.as_f64())
                .map(|a| a < 0.0)
                .unwrap_or(false)
        })
        .collect();
    let mut request =
        ExplanationRequest::new(suspicious, examples, ErrorMetric::too_low("total", 0.0));
    request.config = config;
    let explanation = explain_on_table(&dataset.table, &result, &request).expect("fec explanation");
    (result, explanation)
}

/// Runs the corrupted-measurements pipeline used by E5/E6/E8.
pub fn corrupted_explanation(
    dataset: &CorruptedDataset,
    examples: Vec<RowId>,
    config: ExplainConfig,
) -> (QueryResult, Explanation) {
    let result = run_query(&dataset.table, &dataset.group_avg_query());
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap_or(None).unwrap_or(0.0) > 65.0)
        .collect();
    assert!(!suspicious.is_empty(), "no suspicious groups in the corrupted data");
    let mut request =
        ExplanationRequest::new(suspicious, examples, ErrorMetric::too_high("avg_value", 60.0));
    request.config = config;
    let explanation =
        explain_on_table(&dataset.table, &result, &request).expect("corrupted explanation");
    (result, explanation)
}

/// An explain configuration with a given Dataset-Enumerator cleaning
/// strategy and subgroup-extension flag (used by the E8 ablation).
pub fn config_with_enumerator(cleaning: CleaningStrategy, extend: bool) -> ExplainConfig {
    let mut config = ExplainConfig::standard();
    config.enumerator.cleaning = cleaning;
    config.enumerator.extend_with_subgroups = extend;
    config
}

/// Prints a fixed-width table with a title, used by every report binary so
/// the output reads like the rows of a paper table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
        .collect();
    println!("{}", header_line.join(" | "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", cells.join(" | "));
    }
}

/// Formats a float with three decimal places (shared by the reports).
pub fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_core::CleaningStrategy;

    #[test]
    fn sensor_harness_produces_an_explanation() {
        let ds = sensor_dataset(16_200);
        let (result, explanation) = sensor_explanation(&ds, ExplainConfig::standard());
        assert!(result.len() > 1);
        assert!(!explanation.predicates.is_empty());
        assert!(explanation.best().unwrap().improvement > 0.3);
    }

    #[test]
    fn fec_harness_reproduces_the_reattribution_predicate() {
        let ds = fec_dataset(10_000);
        let (_, explanation) = fec_explanation(&ds, ExplainConfig::standard());
        assert!(explanation
            .predicates
            .iter()
            .any(|p| p.predicate.to_string().contains("REATTRIBUTION")));
    }

    #[test]
    fn corrupted_harness_and_config_helpers() {
        let ds = corrupted_dataset(4_000);
        let config = config_with_enumerator(CleaningStrategy::None, false);
        assert_eq!(config.enumerator.cleaning, CleaningStrategy::None);
        let (_, explanation) = corrupted_explanation(&ds, vec![], config);
        assert!(!explanation.predicates.is_empty());
    }

    #[test]
    fn query_helpers_and_table_printer() {
        let ds = corrupted_dataset(2_000);
        let with = run_query(&ds.table, &ds.group_avg_query());
        let without = run_query_without_lineage(&ds.table, &ds.group_avg_query());
        assert_eq!(with.rows, without.rows);
        assert!(!with.inputs_of(0).is_empty());
        assert_eq!(without.inputs_of(0).len(), 0);
        print_table("demo", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(fmt(1.23456), "1.235");
    }
}

//! User-selectable error metrics ε.
//!
//! "When the user views the results, she will specify a subset, S ⊆ R, that
//! are wrong ... and an error metric, ε(S), that is 0 when S is error-free
//! and otherwise > 0" (paper §2.1). The paper's example is the `diff`
//! metric — the maximum amount a selected average exceeds an expected
//! constant — and §2.2.2 lists "higher / lower / not equal to expected
//! value" as the predefined error functions offered by the frontend form
//! (Figure 5). All of those are represented here.

use dbwipes_engine::QueryResult;
use std::fmt;

/// The shape of the per-value penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricKind {
    /// "Value is too high": penalty `max(0, v − threshold)`.
    TooHigh {
        /// The expected upper bound (the paper's constant `c`).
        threshold: f64,
    },
    /// "Value is too low": penalty `max(0, threshold − v)`.
    TooLow {
        /// The expected lower bound.
        threshold: f64,
    },
    /// "Should be equal to": penalty `|v − expected|`.
    NotEqualTo {
        /// The expected value.
        expected: f64,
    },
}

/// How per-value penalties over the selected outputs are combined into a
/// single ε value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combine {
    /// Sum of penalties (default — gives smoother influence rankings when
    /// several outputs are selected).
    #[default]
    Sum,
    /// Maximum penalty — exactly the paper's `diff(S) = max(0, max_i(s_i − c))`.
    Max,
    /// Mean penalty.
    Mean,
}

/// An error metric ε over one aggregate output column.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMetric {
    /// Which output column of the query result the metric reads
    /// (e.g. `avg_temp` or `total`).
    pub column: String,
    /// The per-value penalty.
    pub kind: MetricKind,
    /// How penalties are combined across the selected outputs.
    pub combine: Combine,
}

impl ErrorMetric {
    /// "Values are too high" metric over `column` with the given expected
    /// upper bound.
    pub fn too_high(column: impl Into<String>, threshold: f64) -> Self {
        ErrorMetric {
            column: column.into(),
            kind: MetricKind::TooHigh { threshold },
            combine: Combine::Sum,
        }
    }

    /// "Values are too low" metric.
    pub fn too_low(column: impl Into<String>, threshold: f64) -> Self {
        ErrorMetric {
            column: column.into(),
            kind: MetricKind::TooLow { threshold },
            combine: Combine::Sum,
        }
    }

    /// "Should be equal to" metric.
    pub fn not_equal_to(column: impl Into<String>, expected: f64) -> Self {
        ErrorMetric {
            column: column.into(),
            kind: MetricKind::NotEqualTo { expected },
            combine: Combine::Sum,
        }
    }

    /// The paper's `diff` metric: the maximum amount any selected value
    /// exceeds the constant `c` (§2.1).
    pub fn diff(column: impl Into<String>, c: f64) -> Self {
        ErrorMetric {
            column: column.into(),
            kind: MetricKind::TooHigh { threshold: c },
            combine: Combine::Max,
        }
    }

    /// Returns a copy using a different combination rule.
    pub fn with_combine(mut self, combine: Combine) -> Self {
        self.combine = combine;
        self
    }

    /// The penalty of a single output value (`None` — a NULL or vanished
    /// output — contributes zero error).
    pub fn penalty(&self, value: Option<f64>) -> f64 {
        let Some(v) = value else { return 0.0 };
        match self.kind {
            MetricKind::TooHigh { threshold } => (v - threshold).max(0.0),
            MetricKind::TooLow { threshold } => (threshold - v).max(0.0),
            MetricKind::NotEqualTo { expected } => (v - expected).abs(),
        }
    }

    /// Evaluates ε over a collection of output values.
    pub fn evaluate(&self, values: &[Option<f64>]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let penalties = values.iter().map(|v| self.penalty(*v));
        match self.combine {
            Combine::Sum => penalties.sum(),
            Combine::Max => penalties.fold(0.0, f64::max),
            Combine::Mean => penalties.sum::<f64>() / values.len() as f64,
        }
    }

    /// Evaluates ε over the selected output rows of a query result.
    ///
    /// Rows whose index is out of range or whose metric column is NULL
    /// contribute zero error (the output "no longer exists", i.e. is fixed).
    pub fn evaluate_result(&self, result: &QueryResult, selected_rows: &[usize]) -> f64 {
        let Ok(col) = result.column_index(&self.column) else { return 0.0 };
        let values: Vec<Option<f64>> = selected_rows
            .iter()
            .map(|&i| result.rows.get(i).and_then(|r| r.get(col)).and_then(|v| v.as_f64()))
            .collect();
        self.evaluate(&values)
    }

    /// A short human-readable label, as shown by the dashboard's error form.
    pub fn label(&self) -> String {
        match self.kind {
            MetricKind::TooHigh { threshold } => {
                format!("{} is too high (expected <= {threshold:.2})", self.column)
            }
            MetricKind::TooLow { threshold } => {
                format!("{} is too low (expected >= {threshold:.2})", self.column)
            }
            MetricKind::NotEqualTo { expected } => {
                format!("{} should be equal to {expected:.2}", self.column)
            }
        }
    }
}

impl fmt::Display for ErrorMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Suggests error metrics for a user selection, mirroring the dashboard's
/// dynamic error form (Figure 5): the thresholds are derived from the
/// *unselected* outputs, which represent "normal" behaviour.
///
/// `selected` and `unselected` are the aggregate values of the metric
/// column for the suspicious and remaining outputs respectively.
pub fn suggest_metrics(column: &str, selected: &[f64], unselected: &[f64]) -> Vec<ErrorMetric> {
    let mut suggestions = Vec::new();
    if selected.is_empty() {
        return suggestions;
    }
    let sel_mean = mean(selected);
    let reference: Vec<f64> =
        if unselected.is_empty() { selected.to_vec() } else { unselected.to_vec() };
    let ref_mean = mean(&reference);
    let ref_max = reference.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let ref_min = reference.iter().copied().fold(f64::INFINITY, f64::min);

    if sel_mean >= ref_mean {
        suggestions.push(ErrorMetric::too_high(column, ref_max));
    }
    if sel_mean <= ref_mean {
        suggestions.push(ErrorMetric::too_low(column, ref_min));
    }
    suggestions.push(ErrorMetric::not_equal_to(column, ref_mean));
    suggestions
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_high_penalties() {
        let m = ErrorMetric::too_high("avg_temp", 30.0);
        assert_eq!(m.penalty(Some(120.0)), 90.0);
        assert_eq!(m.penalty(Some(25.0)), 0.0);
        assert_eq!(m.penalty(None), 0.0);
        assert_eq!(m.evaluate(&[Some(120.0), Some(50.0), Some(10.0)]), 110.0);
        assert!(m.label().contains("too high"));
    }

    #[test]
    fn too_low_and_not_equal() {
        let m = ErrorMetric::too_low("total", 0.0);
        assert_eq!(m.penalty(Some(-500.0)), 500.0);
        assert_eq!(m.penalty(Some(10.0)), 0.0);
        assert!(m.label().contains("too low"));

        let m = ErrorMetric::not_equal_to("avg", 20.0);
        assert_eq!(m.penalty(Some(23.0)), 3.0);
        assert_eq!(m.penalty(Some(17.0)), 3.0);
        assert!(m.to_string().contains("equal to 20.00"));
    }

    #[test]
    fn diff_matches_the_paper_definition() {
        // diff(S) = max(0, max_i(s_i - c))
        let m = ErrorMetric::diff("avg_temp", 70.0);
        assert_eq!(m.combine, Combine::Max);
        assert_eq!(m.evaluate(&[Some(120.0), Some(80.0), Some(60.0)]), 50.0);
        assert_eq!(m.evaluate(&[Some(60.0), Some(65.0)]), 0.0);
        assert_eq!(m.evaluate(&[]), 0.0);
    }

    #[test]
    fn combine_modes() {
        let values = [Some(10.0), Some(30.0)];
        let m = ErrorMetric::too_high("x", 0.0);
        assert_eq!(m.clone().with_combine(Combine::Sum).evaluate(&values), 40.0);
        assert_eq!(m.clone().with_combine(Combine::Max).evaluate(&values), 30.0);
        assert_eq!(m.with_combine(Combine::Mean).evaluate(&values), 20.0);
    }

    #[test]
    fn evaluate_result_reads_the_named_column() {
        use dbwipes_engine::execute_sql;
        use dbwipes_storage::{Catalog, DataType, Schema, Table, Value};
        let mut t = Table::new(
            "readings",
            Schema::of(&[("hour", DataType::Int), ("temp", DataType::Float)]),
        )
        .unwrap();
        for (h, temp) in [(0, 20.0), (0, 22.0), (1, 120.0), (1, 118.0)] {
            t.push_row(vec![Value::Int(h), Value::Float(temp)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        let r = execute_sql(&c, "SELECT hour, avg(temp) AS a FROM readings GROUP BY hour").unwrap();
        let m = ErrorMetric::too_high("a", 30.0);
        assert_eq!(m.evaluate_result(&r, &[1]), 89.0);
        assert_eq!(m.evaluate_result(&r, &[0]), 0.0);
        assert_eq!(m.evaluate_result(&r, &[0, 1]), 89.0);
        // Out-of-range rows and unknown columns contribute nothing.
        assert_eq!(m.evaluate_result(&r, &[17]), 0.0);
        assert_eq!(ErrorMetric::too_high("missing", 0.0).evaluate_result(&r, &[0]), 0.0);
    }

    #[test]
    fn suggestions_depend_on_selection_direction() {
        // Selected values above the rest: suggest "too high" first.
        let s = suggest_metrics("avg_temp", &[120.0, 110.0], &[20.0, 22.0, 21.0]);
        assert!(matches!(s[0].kind, MetricKind::TooHigh { .. }));
        assert!(s.iter().any(|m| matches!(m.kind, MetricKind::NotEqualTo { .. })));
        // Threshold comes from the unselected maximum.
        match s[0].kind {
            MetricKind::TooHigh { threshold } => assert_eq!(threshold, 22.0),
            _ => unreachable!(),
        }

        // Selected below the rest: suggest "too low".
        let s = suggest_metrics("total", &[-900.0], &[100.0, 300.0]);
        assert!(matches!(s[0].kind, MetricKind::TooLow { .. }));

        // No unselected values: fall back to the selection itself.
        let s = suggest_metrics("x", &[5.0], &[]);
        assert!(!s.is_empty());
        // Empty selection: nothing to suggest.
        assert!(suggest_metrics("x", &[], &[1.0]).is_empty());
    }
}

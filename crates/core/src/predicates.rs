//! The Predicate Enumerator: describe each candidate dataset with compact
//! predicates.
//!
//! "The Predicate Enumerator then builds a decision tree on each candidate
//! dataset Dᶜᵢ by labeling Dᶜᵢ as the positive class and F − Dᶜᵢ as
//! negative. We currently use m standard splitting and pruning strategies
//! (e.g., gini, gain ratio) to construct several trees" (paper §2.2.2).
//!
//! In addition to the attribute-threshold predicates decision trees
//! produce, DBWipes' FEC walkthrough hinges on a predicate over a free-text
//! attribute ("the memo attribute containing the string 'REATTRIBUTION TO
//! SPOUSE'"). High-cardinality text columns are excluded from the learned
//! feature space, so this module also mines *text containment* conditions
//! directly: distinct values of text columns that are frequent among the
//! candidate rows and rare outside them.

use crate::enumerator::CandidateDataset;
use dbwipes_learn::{DecisionTree, FeatureSpace, SplitCriterion, TreeConfig};
use dbwipes_storage::{Condition, ConjunctivePredicate, DataType, RowId, Table};
use std::collections::{BTreeSet, HashMap};

/// Configuration of the Predicate Enumerator.
#[derive(Debug, Clone)]
pub struct PredicateEnumConfig {
    /// The decision-tree configurations trained per candidate dataset —
    /// the paper's "m standard splitting and pruning strategies".
    pub tree_configs: Vec<TreeConfig>,
    /// Whether to mine substring-containment conditions over text columns.
    pub mine_text_conditions: bool,
    /// Minimum number of candidate rows a text value must appear in.
    pub min_text_support: usize,
    /// Minimum precision (candidate rows / matching rows) of a text value.
    pub min_text_precision: f64,
    /// Maximum number of distinct values examined per text column.
    pub max_text_values: usize,
}

impl Default for PredicateEnumConfig {
    fn default() -> Self {
        PredicateEnumConfig {
            tree_configs: vec![
                TreeConfig { criterion: SplitCriterion::Gini, ..TreeConfig::default() },
                TreeConfig { criterion: SplitCriterion::GainRatio, ..TreeConfig::default() },
                TreeConfig {
                    criterion: SplitCriterion::Gini,
                    max_depth: 2,
                    ..TreeConfig::default()
                },
            ],
            mine_text_conditions: true,
            min_text_support: 3,
            min_text_precision: 0.5,
            max_text_values: 2_000,
        }
    }
}

/// Enumerates candidate predicates describing one candidate dataset.
///
/// `f_rows` is F (all inputs of the suspicious outputs); the candidate's
/// rows are the positive class and `F − candidate` the negative class.
/// Returns deduplicated, non-trivial conjunctive predicates.
pub fn enumerate_predicates(
    table: &Table,
    space: &FeatureSpace,
    f_rows: &[RowId],
    candidate: &CandidateDataset,
    config: &PredicateEnumConfig,
) -> Vec<ConjunctivePredicate> {
    let positive: BTreeSet<RowId> = candidate.rows.iter().copied().collect();
    if positive.is_empty() || f_rows.is_empty() {
        return Vec::new();
    }
    let labels: Vec<bool> = f_rows.iter().map(|r| positive.contains(r)).collect();
    let mut predicates: Vec<ConjunctivePredicate> = Vec::new();

    // Decision-tree predicates.
    if !space.is_empty() && labels.iter().any(|&l| l) && labels.iter().any(|&l| !l) {
        let dataset = space.extract(table, f_rows);
        for tree_config in &config.tree_configs {
            let tree = DecisionTree::train(&dataset, &labels, *tree_config);
            for rule in tree.positive_rules() {
                let predicate = rule.to_predicate(space);
                if !predicate.is_trivial() {
                    predicates.push(predicate);
                }
            }
        }
    }

    // Text-containment predicates over string columns.
    if config.mine_text_conditions {
        predicates.extend(mine_text_predicates(table, f_rows, &positive, config));
    }

    dedup(predicates)
}

/// Mines `column LIKE '%value%'` predicates from text columns: values that
/// occur in at least `min_text_support` candidate rows with precision at
/// least `min_text_precision` among F.
fn mine_text_predicates(
    table: &Table,
    f_rows: &[RowId],
    positive: &BTreeSet<RowId>,
    config: &PredicateEnumConfig,
) -> Vec<ConjunctivePredicate> {
    let mut out = Vec::new();
    for field in table.schema().fields() {
        if field.dtype != DataType::Str {
            continue;
        }
        let Some(column) = table.column_by_name(&field.name) else { continue };
        // value -> (positive occurrences, total occurrences within F)
        let mut counts: HashMap<String, (usize, usize)> = HashMap::new();
        for &rid in f_rows {
            let Some(text) = column.get_str(rid.index()) else { continue };
            if text.is_empty() {
                continue;
            }
            if counts.len() >= config.max_text_values && !counts.contains_key(text) {
                continue;
            }
            let entry = counts.entry(text.to_string()).or_insert((0, 0));
            entry.1 += 1;
            if positive.contains(&rid) {
                entry.0 += 1;
            }
        }
        for (value, (pos, total)) in counts {
            if pos >= config.min_text_support
                && (pos as f64 / total as f64) >= config.min_text_precision
            {
                out.push(ConjunctivePredicate::new(vec![Condition::contains(
                    field.name.clone(),
                    value,
                )]));
            }
        }
    }
    out
}

/// Removes duplicate predicates (by rendered text), preserving order.
fn dedup(predicates: Vec<ConjunctivePredicate>) -> Vec<ConjunctivePredicate> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    predicates.into_iter().filter(|p| seen.insert(p.to_string())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerator::CandidateSource;
    use dbwipes_storage::{Schema, Value};

    /// FEC-like table: a cluster of negative "REATTRIBUTION TO SPOUSE"
    /// donations among ordinary positive ones.
    fn fec_like() -> (Table, Vec<RowId>, Vec<RowId>) {
        let schema = Schema::of(&[
            ("day", DataType::Int),
            ("amount", DataType::Float),
            ("occupation", DataType::Str),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("contributions", schema).unwrap();
        let mut errors = Vec::new();
        for i in 0..300i64 {
            let is_error = i % 15 == 0;
            let memo = if is_error { "REATTRIBUTION TO SPOUSE" } else { "ONLINE DONATION" };
            let occupation = if is_error { "CEO" } else { "TEACHER" };
            let amount = if is_error { -1500.0 } else { 100.0 + (i % 9) as f64 };
            let rid = t
                .push_row(vec![
                    Value::Int(500 + (i % 5)),
                    Value::Float(amount),
                    Value::str(occupation),
                    Value::str(memo),
                ])
                .unwrap();
            if is_error {
                errors.push(rid);
            }
        }
        let all: Vec<RowId> = t.visible_row_ids().collect();
        (t, errors, all)
    }

    #[test]
    fn trees_and_text_mining_find_the_reattribution_predicate() {
        let (t, errors, all) = fec_like();
        let space = FeatureSpace::build_excluding(&t, &["amount".into()], &all);
        let candidate =
            CandidateDataset { rows: errors.clone(), source: CandidateSource::CleanedExamples };
        let predicates =
            enumerate_predicates(&t, &space, &all, &candidate, &PredicateEnumConfig::default());
        assert!(!predicates.is_empty());
        let texts: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
        assert!(
            texts.iter().any(|p| p.contains("REATTRIBUTION")),
            "expected a memo predicate, got {texts:?}"
        );
        // Some predicate should capture the structured signal too (occupation).
        assert!(texts.iter().any(|p| p.contains("occupation") || p.contains("memo")), "{texts:?}");
        // No duplicates.
        let unique: BTreeSet<&String> = texts.iter().collect();
        assert_eq!(unique.len(), texts.len());
    }

    #[test]
    fn text_mining_respects_support_and_precision_thresholds() {
        let (t, errors, all) = fec_like();
        let space = FeatureSpace::build_excluding(&t, &[], &all);
        let candidate = CandidateDataset { rows: errors, source: CandidateSource::CleanedExamples };
        // Impossible support threshold: no text predicates.
        let config = PredicateEnumConfig {
            min_text_support: 10_000,
            tree_configs: vec![],
            ..Default::default()
        };
        let predicates = enumerate_predicates(&t, &space, &all, &candidate, &config);
        assert!(predicates.is_empty());
        // Text mining disabled.
        let config = PredicateEnumConfig {
            mine_text_conditions: false,
            tree_configs: vec![],
            ..Default::default()
        };
        assert!(enumerate_predicates(&t, &space, &all, &candidate, &config).is_empty());
    }

    #[test]
    fn empty_candidates_produce_no_predicates() {
        let (t, _, all) = fec_like();
        let space = FeatureSpace::build_excluding(&t, &[], &all);
        let empty = CandidateDataset { rows: vec![], source: CandidateSource::RawExamples };
        assert!(enumerate_predicates(&t, &space, &all, &empty, &PredicateEnumConfig::default())
            .is_empty());
        let candidate =
            CandidateDataset { rows: vec![RowId(0)], source: CandidateSource::RawExamples };
        assert!(enumerate_predicates(&t, &space, &[], &candidate, &PredicateEnumConfig::default())
            .is_empty());
    }

    #[test]
    fn all_positive_candidate_yields_only_text_predicates_if_any() {
        let (t, _, all) = fec_like();
        let space = FeatureSpace::build_excluding(&t, &[], &all);
        // Candidate == F: the tree has no negative class to separate, and no
        // text value is specific to the candidate (precision filter uses the
        // whole of F), so the only surviving predicates cover most of F.
        let candidate =
            CandidateDataset { rows: all.clone(), source: CandidateSource::CleanedExamples };
        let predicates =
            enumerate_predicates(&t, &space, &all, &candidate, &PredicateEnumConfig::default());
        for p in &predicates {
            assert!(!p.is_trivial());
        }
    }

    #[test]
    fn multiple_tree_configs_produce_more_candidate_predicates() {
        let (t, errors, all) = fec_like();
        let space = FeatureSpace::build_excluding(&t, &["amount".into()], &all);
        let candidate = CandidateDataset { rows: errors, source: CandidateSource::CleanedExamples };
        let one = PredicateEnumConfig {
            tree_configs: vec![TreeConfig::default()],
            mine_text_conditions: false,
            ..Default::default()
        };
        let many = PredicateEnumConfig { mine_text_conditions: false, ..Default::default() };
        let p_one = enumerate_predicates(&t, &space, &all, &candidate, &one);
        let p_many = enumerate_predicates(&t, &space, &all, &candidate, &many);
        assert!(p_many.len() >= p_one.len());
    }
}

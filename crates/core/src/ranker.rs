//! The Predicate Ranker.
//!
//! "Finally, the Predicate Ranker computes a score for each tree that
//! increases with improvement in the error metric, and the accuracy of the
//! tree at differentiating Dᶜᵢ from F − Dᶜᵢ, and decreases by the
//! complexity (number of terms in) the predicate" (paper §2.2.2).
//!
//! For every candidate predicate the ranker answers "what if I clicked this
//! predicate" — the query result with the predicate's matching tuples
//! excluded — and measures how much ε improves over the user-selected
//! outputs. Instead of re-executing the full SQL statement per candidate,
//! it asks a [`GroupedAggregateCache`] built once per ranking: a single
//! pass over the table classifies each row under SQL three-valued logic
//! (matching the semantics of rewriting the query with `AND NOT predicate`)
//! and only the touched groups' aggregate states are re-derived. Candidates
//! are scored in parallel across scoped threads; each candidate's score is
//! independent, so the ranking is deterministic regardless of thread count.

use crate::error::CoreError;
use crate::metric::ErrorMetric;
use crate::parallel::map_chunked;
use dbwipes_engine::{ExclusionQuery, GroupedAggregateCache, QueryResult};
use dbwipes_storage::{
    Candidate, ConditionBitmapCache, ConjunctivePredicate, DataType, RowId, RowSet, Table, Value,
};
use std::collections::{BTreeSet, HashMap};

/// Weights of the ranking score.
#[derive(Debug, Clone, Copy)]
pub struct RankerConfig {
    /// Weight of the relative improvement in ε (1 = the error disappears).
    pub weight_error: f64,
    /// Weight of the F1 agreement between the predicate's matches (within F)
    /// and the user's example tuples D′.
    pub weight_accuracy: f64,
    /// Penalty per additional conjunct beyond the first.
    pub weight_complexity: f64,
    /// Maximum number of ranked predicates returned.
    pub max_results: usize,
}

impl Default for RankerConfig {
    fn default() -> Self {
        RankerConfig {
            weight_error: 1.0,
            weight_accuracy: 0.5,
            weight_complexity: 0.05,
            max_results: 10,
        }
    }
}

/// A predicate together with its ranking evidence — one entry of the
/// dashboard's "Ranked Predicates" panel (Figure 6).
///
/// Generic over the candidate shape: the classic conjunctive form is the
/// default, but any [`Candidate`] (e.g. a
/// [`PredicateTree`](dbwipes_storage::PredicateTree) with OR/NOT nodes)
/// ranks through the same machinery.
#[derive(Debug, Clone)]
pub struct RankedPredicate<P = ConjunctivePredicate> {
    /// The human-readable predicate.
    pub predicate: P,
    /// Combined ranking score (higher is better).
    pub score: f64,
    /// ε over the selected outputs before cleaning.
    pub error_before: f64,
    /// ε over the selected outputs after excluding the predicate's tuples.
    pub error_after: f64,
    /// Relative improvement `(before − after) / before` (0 when before = 0).
    pub improvement: f64,
    /// F1 agreement between the predicate's matches within F and D′.
    pub example_f1: f64,
    /// Number of conjuncts.
    pub complexity: usize,
    /// Number of visible table rows the predicate matches (i.e. how many
    /// tuples clicking it would remove).
    pub matched_rows: usize,
}

impl<P: std::fmt::Display> RankedPredicate<P> {
    /// One-line rendering used by examples and the report binaries.
    pub fn summary(&self) -> String {
        format!(
            "score={:+.3} improvement={:>5.1}% f1={:.2} removes={} :: {}",
            self.score,
            self.improvement * 100.0,
            self.example_f1,
            self.matched_rows,
            self.predicate
        )
    }
}

/// Ranks candidate predicates, building the incremental re-aggregation
/// cache internally (one statement execution for the whole candidate set).
///
/// * `table` — the queried table.
/// * `result` — the original query result (provides the statement, the
///   selected groups' keys and ε's baseline).
/// * `selected` — indices of the suspicious output rows S.
/// * `examples` — the user's suspicious input tuples D′.
/// * `metric` — the error metric ε.
pub fn rank_predicates<P: Candidate>(
    table: &Table,
    result: &QueryResult,
    selected: &[usize],
    examples: &[RowId],
    metric: &ErrorMetric,
    predicates: Vec<P>,
    config: &RankerConfig,
) -> Result<Vec<RankedPredicate<P>>, CoreError> {
    let cache = GroupedAggregateCache::build(table, &result.statement)?;
    rank_predicates_with_cache(&cache, result, selected, examples, metric, predicates, config)
}

/// [`rank_predicates`] over a caller-provided cache (which carries the
/// table it was built from) — the explain pipeline builds one
/// [`GroupedAggregateCache`] and shares it between the Preprocessor and the
/// Ranker.
pub fn rank_predicates_with_cache<P: Candidate>(
    cache: &GroupedAggregateCache,
    result: &QueryResult,
    selected: &[usize],
    examples: &[RowId],
    metric: &ErrorMetric,
    predicates: Vec<P>,
    config: &RankerConfig,
) -> Result<Vec<RankedPredicate<P>>, CoreError> {
    let error_before = metric.evaluate_result(result, selected);
    let f_rows: Vec<RowId> = result.inputs_of_rows(selected);
    let num_rows = cache.table().num_rows();
    let in_range = |r: &&RowId| r.index() < num_rows;
    let ctx = ScoreContext {
        cache,
        bitmaps: ConditionBitmapCache::new(cache.table()),
        error_before,
        // Group keys of the selected outputs, used to find the same groups
        // in the incrementally cleaned result.
        selected_keys: selected.iter().filter_map(|&i| result.group_keys.get(i).cloned()).collect(),
        f_rowset: RowSet::from_rows(num_rows, f_rows.iter().filter(in_range)),
        example_rowset: RowSet::from_rows(num_rows, examples.iter().filter(in_range)),
        f_set: f_rows.iter().copied().collect(),
        example_set: examples.iter().copied().collect(),
        metric,
        config,
    };

    // Deduplicate on the canonical (commutativity-normalised) form, so
    // `a AND b` and `b AND a` are scored once; first occurrence wins.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let candidates: Vec<P> = predicates
        .into_iter()
        .filter(|p| !p.is_trivial() && seen.insert(p.canonical_key()))
        .collect();

    // Warm the condition-bitmap cache serially: the candidates share leaf
    // conditions drawn from one pool, so each distinct condition's column
    // kernel runs exactly once here, and the parallel scoring pass below
    // is pure bitmap combining over cache hits.
    for candidate in &candidates {
        for condition in candidate.leaf_conditions() {
            let _ = ctx.bitmaps.condition(ctx.cache.table(), &condition);
        }
    }

    let mut ranked = map_chunked(&candidates, |_, predicate| score_candidate(&ctx, predicate))
        .into_iter()
        .collect::<Result<Vec<RankedPredicate<P>>, CoreError>>()?;

    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.complexity.cmp(&b.complexity)));
    ranked.truncate(config.max_results);
    Ok(ranked)
}

/// The per-ranking state shared by every candidate's scoring pass.
struct ScoreContext<'a, 't> {
    cache: &'a GroupedAggregateCache<'t>,
    /// Condition bitmaps shared across candidates (warmed before scoring).
    bitmaps: ConditionBitmapCache,
    error_before: f64,
    selected_keys: Vec<Vec<Value>>,
    /// F as a bitmap (bitmap scoring path).
    f_rowset: RowSet,
    /// D′ as a bitmap (bitmap scoring path).
    example_rowset: RowSet,
    /// F as an ordered set (scalar fallback path).
    f_set: BTreeSet<RowId>,
    /// D′ as an ordered set (scalar fallback path; also the recall
    /// denominator, which counts every distinct example the user gave,
    /// in-table or not).
    example_set: BTreeSet<RowId>,
    metric: &'a ErrorMetric,
    config: &'a RankerConfig,
}

/// The per-candidate evidence both scoring paths produce: match counts,
/// example agreement, and the incrementally cleaned partial result.
struct CandidateEvidence {
    matched_rows: usize,
    matched_in_f: usize,
    true_positives: usize,
    cleaned: QueryResult,
}

/// Scores one candidate under three-valued logic — rows where the
/// predicate is TRUE are its matches; cached (filter-passing) rows where
/// it is TRUE *or* NULL are excluded, exactly as the `AND NOT predicate`
/// rewrite would drop them — then the cache re-derives only the touched
/// groups.
///
/// The default path is vectorized: each leaf condition's cached bitmap
/// (one columnar kernel scan per *distinct* condition per ranking) is
/// combined with word-level AND/OR/NOT, match/agreement counts are
/// popcounts, and the exclusion set flows into the aggregate cache as a
/// bitmap. Candidates the typed compiler cannot express fall back to the
/// per-row scalar walk.
fn score_candidate<P: Candidate>(
    ctx: &ScoreContext<'_, '_>,
    predicate: &P,
) -> Result<RankedPredicate<P>, CoreError> {
    let evidence = match predicate.tri_eval(&ctx.bitmaps, ctx.cache.table()) {
        // A compiled candidate is well-typed by construction, so the
        // scalar path's expression validation cannot fail here.
        Some(tri) => score_bitmaps(ctx, tri),
        None => score_scalar(ctx, predicate)?,
    };
    let CandidateEvidence { matched_rows, matched_in_f, true_positives, cleaned } = evidence;
    let error_before = ctx.error_before;
    let error_after = error_over_keys(&cleaned, &ctx.selected_keys, ctx.metric);
    let improvement = if error_before > 0.0 {
        ((error_before - error_after) / error_before).clamp(-1.0, 1.0)
    } else {
        0.0
    };

    // Agreement with the user's examples, measured within F.
    let tp = true_positives as f64;
    let precision = if matched_in_f == 0 { 0.0 } else { tp / matched_in_f as f64 };
    let recall = if ctx.example_set.is_empty() { 0.0 } else { tp / ctx.example_set.len() as f64 };
    let example_f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    let complexity = predicate.complexity();
    let score = ctx.config.weight_error * improvement + ctx.config.weight_accuracy * example_f1
        - ctx.config.weight_complexity * (complexity.saturating_sub(1)) as f64;

    Ok(RankedPredicate {
        predicate: predicate.clone(),
        score,
        error_before,
        error_after,
        improvement,
        example_f1,
        complexity,
        matched_rows,
    })
}

/// The vectorized scoring path: bitmap intersections and popcounts only.
fn score_bitmaps(ctx: &ScoreContext<'_, '_>, tri: dbwipes_storage::TriSet) -> CandidateEvidence {
    let matched = tri.trues.and(ctx.bitmaps.visible());
    // TRUE-or-NULL rows among the cache's filter-passing inputs: the
    // `AND NOT predicate` rewrite drops exactly these.
    let mut excluded = tri.passes_or_unknown();
    excluded.and_assign(ctx.cache.membership());
    // Only the brushed groups matter for ε: ask the cache for exactly
    // those keys instead of materialising (and re-sorting) every group.
    let cleaned = ctx
        .cache
        .result(&ExclusionQuery::new().excluding_set(&excluded).for_keys(&ctx.selected_keys));
    let matched_in_f = matched.and(&ctx.f_rowset);
    CandidateEvidence {
        matched_rows: matched.count_ones(),
        matched_in_f: matched_in_f.count_ones(),
        true_positives: matched_in_f.intersection_count(&ctx.example_rowset),
        cleaned,
    }
}

/// The scalar fallback for predicates outside the typed-kernel fragment:
/// one expression walk per visible row.
fn score_scalar<P: Candidate>(
    ctx: &ScoreContext<'_, '_>,
    predicate: &P,
) -> Result<CandidateEvidence, CoreError> {
    let cache = ctx.cache;
    let table = cache.table();
    // The same validation executing the rewritten statement would perform.
    let p_expr = predicate.to_expr();
    let t = p_expr.validate(table.schema())?;
    if !matches!(t, DataType::Bool | DataType::Null) {
        return Err(CoreError::invalid(format!("predicate must be boolean, found {t}")));
    }

    let mut matched: Vec<RowId> = Vec::new();
    let mut excluded: Vec<RowId> = Vec::new();
    for rid in table.visible_row_ids() {
        match p_expr.eval(table, rid)? {
            Value::Bool(true) => {
                matched.push(rid);
                if cache.contains(rid) {
                    excluded.push(rid);
                }
            }
            Value::Bool(false) => {}
            // NULL: the row satisfies neither the predicate nor its
            // negation, so the rewrite's WHERE drops it.
            _ => {
                if cache.contains(rid) {
                    excluded.push(rid);
                }
            }
        }
    }

    let cleaned =
        cache.result(&ExclusionQuery::new().excluding_rows(&excluded).for_keys(&ctx.selected_keys));
    let matched_in_f: Vec<&RowId> = matched.iter().filter(|r| ctx.f_set.contains(r)).collect();
    let true_positives = matched_in_f.iter().filter(|r| ctx.example_set.contains(r)).count();
    Ok(CandidateEvidence {
        matched_rows: matched.len(),
        matched_in_f: matched_in_f.len(),
        true_positives,
        cleaned,
    })
}

/// Evaluates the metric over the rows of `result` whose group keys match
/// `keys`; groups that disappeared contribute no error.
pub fn error_over_keys(result: &QueryResult, keys: &[Vec<Value>], metric: &ErrorMetric) -> f64 {
    let index: HashMap<&Vec<Value>, usize> =
        result.group_keys.iter().enumerate().map(|(i, k)| (k, i)).collect();
    let rows: Vec<usize> = keys.iter().filter_map(|k| index.get(k).copied()).collect();
    metric.evaluate_result(result, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, Condition, DataType, Schema, Value};

    /// Window 1 is polluted by sensor 15's ~120F readings.
    fn setup() -> (Catalog, Vec<RowId>) {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("window", DataType::Int),
                ("sensorid", DataType::Int),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        let mut broken = Vec::new();
        for i in 0..120i64 {
            let window = i % 2;
            let sensor = i % 12;
            let is_broken = sensor == 7 && window == 1;
            let temp = if is_broken { 120.0 } else { 20.0 + (i % 5) as f64 };
            let rid = t
                .push_row(vec![Value::Int(window), Value::Int(sensor), Value::Float(temp)])
                .unwrap();
            if is_broken {
                broken.push(rid);
            }
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        (c, broken)
    }

    #[test]
    fn the_true_predicate_ranks_first() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        // Window 1 has the inflated average; select it.
        let selected = vec![1usize];
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let candidates = vec![
            ConjunctivePredicate::new(vec![Condition::equals("sensorid", 7)]),
            ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]),
            ConjunctivePredicate::new(vec![
                Condition::equals("sensorid", 7),
                Condition::above("temp", 100.0),
            ]),
            ConjunctivePredicate::always_true(),
        ];
        let ranked = rank_predicates(
            c.table("readings").unwrap(),
            &r,
            &selected,
            &broken,
            &metric,
            candidates,
            &RankerConfig::default(),
        )
        .unwrap();
        // The trivial predicate is dropped, the rest are ranked.
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].predicate.to_string().contains("sensorid = 7"));
        assert!(ranked[0].score > ranked[1].score);
        assert!(ranked[0].improvement > 0.9);
        assert!(ranked[0].error_after < ranked[0].error_before);
        assert!(ranked[0].example_f1 > 0.9);
        // The irrelevant sensor yields no improvement (removing its normal
        // readings can only raise the polluted average further).
        let irrelevant =
            ranked.iter().find(|p| p.predicate.to_string().contains("sensorid = 3")).unwrap();
        assert!(irrelevant.improvement <= 0.0);
        assert!(!ranked[0].summary().is_empty());
    }

    #[test]
    fn complexity_breaks_ties() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        // Two predicates removing exactly the same rows; the simpler one must
        // rank at least as high.
        let simple = ConjunctivePredicate::new(vec![Condition::above("temp", 100.0)]);
        let complex = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::equals("sensorid", 7),
            Condition::equals("window", 1),
        ]);
        let ranked = rank_predicates(
            c.table("readings").unwrap(),
            &r,
            &[1],
            &broken,
            &metric,
            vec![complex.clone(), simple.clone()],
            &RankerConfig::default(),
        )
        .unwrap();
        assert_eq!(ranked[0].predicate, simple);
        assert!(ranked[0].score >= ranked[1].score);
        assert_eq!(ranked[1].complexity, 3);
    }

    #[test]
    fn zero_baseline_error_yields_zero_improvement() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        // Threshold far above everything: nothing is wrong.
        let metric = ErrorMetric::too_high("avg_temp", 10_000.0);
        let ranked = rank_predicates(
            c.table("readings").unwrap(),
            &r,
            &[1],
            &broken,
            &metric,
            vec![ConjunctivePredicate::new(vec![Condition::equals("sensorid", 7)])],
            &RankerConfig::default(),
        )
        .unwrap();
        assert_eq!(ranked[0].improvement, 0.0);
        assert_eq!(ranked[0].error_before, 0.0);
    }

    #[test]
    fn max_results_is_respected() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let candidates: Vec<ConjunctivePredicate> = (0..12)
            .map(|s| ConjunctivePredicate::new(vec![Condition::equals("sensorid", s)]))
            .collect();
        let config = RankerConfig { max_results: 4, ..Default::default() };
        let ranked = rank_predicates(
            c.table("readings").unwrap(),
            &r,
            &[1],
            &broken,
            &metric,
            candidates,
            &config,
        )
        .unwrap();
        assert_eq!(ranked.len(), 4);
        // Scores are non-increasing.
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn vanished_groups_count_as_fixed() {
        let (c, _) = setup();
        let r = execute_sql(
            &c,
            "SELECT window, avg(temp) FROM readings WHERE sensorid = 7 GROUP BY window",
        )
        .unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        // The filtered query has a single output group (window 1 at index 0);
        // excluding sensor 7 removes that whole group, so error_after must be 0.
        let ranked = rank_predicates(
            c.table("readings").unwrap(),
            &r,
            &[0],
            &[],
            &metric,
            vec![ConjunctivePredicate::new(vec![Condition::equals("sensorid", 7)])],
            &RankerConfig::default(),
        )
        .unwrap();
        assert_eq!(ranked[0].error_after, 0.0);
        assert_eq!(ranked[0].improvement, 1.0);
        // With no examples the F1 term is zero but ranking still works.
        assert_eq!(ranked[0].example_f1, 0.0);
    }

    #[test]
    fn commuted_conjunctions_are_scored_once() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let a_and_b = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 7),
            Condition::above("temp", 100.0),
        ]);
        let b_and_a = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::equals("sensorid", 7),
        ]);
        assert_ne!(a_and_b.to_string(), b_and_a.to_string());
        assert_eq!(a_and_b.canonical_key(), b_and_a.canonical_key());
        let ranked = rank_predicates(
            c.table("readings").unwrap(),
            &r,
            &[1],
            &broken,
            &metric,
            vec![a_and_b.clone(), b_and_a],
            &RankerConfig::default(),
        )
        .unwrap();
        // Only the first occurrence survives dedup.
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].predicate, a_and_b);
    }

    #[test]
    fn shared_cache_matches_internal_build() {
        let (c, broken) = setup();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let candidates: Vec<ConjunctivePredicate> = (0..12)
            .map(|s| ConjunctivePredicate::new(vec![Condition::equals("sensorid", s)]))
            .collect();
        let cache = GroupedAggregateCache::build(table, &r.statement).unwrap();
        let via_cache = rank_predicates_with_cache(
            &cache,
            &r,
            &[1],
            &broken,
            &metric,
            candidates.clone(),
            &RankerConfig::default(),
        )
        .unwrap();
        let direct = rank_predicates(
            table,
            &r,
            &[1],
            &broken,
            &metric,
            candidates,
            &RankerConfig::default(),
        )
        .unwrap();
        assert_eq!(via_cache.len(), direct.len());
        for (a, b) in via_cache.iter().zip(&direct) {
            assert_eq!(a.predicate, b.predicate);
            assert_eq!(a.score, b.score);
        }
    }
}

//! Error type for the ranked provenance system.

use dbwipes_engine::EngineError;
use dbwipes_storage::StorageError;
use std::fmt;

/// Errors produced by the DBWipes backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The explanation request is malformed (empty selection, metric over a
    /// non-existent column, ...).
    InvalidRequest(String),
    /// An error bubbled up from the query engine.
    Engine(EngineError),
    /// An error bubbled up from the storage layer.
    Storage(StorageError),
}

impl CoreError {
    /// Convenience constructor for request-validation errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        CoreError::InvalidRequest(message.into())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidRequest(msg) => write!(f, "invalid explanation request: {msg}"),
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            CoreError::InvalidRequest(_) => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoreError::invalid("no outputs selected");
        assert!(e.to_string().contains("no outputs selected"));
        assert!(std::error::Error::source(&e).is_none());

        let e: CoreError = EngineError::plan("bad").into();
        assert!(e.to_string().contains("engine error"));
        assert!(std::error::Error::source(&e).is_some());

        let e: CoreError = StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("storage error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

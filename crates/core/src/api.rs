//! The DBWipes backend facade.
//!
//! [`DbWipes`] owns the catalog and exposes the end-to-end loop of Figure 1:
//! execute a query, accept the user's selections (S, D′, ε), and run the
//! backend pipeline — Preprocessor → Dataset Enumerator → Predicate
//! Enumerator → Predicate Ranker — returning a ranked list of predicates
//! together with per-component timings (used by the latency-breakdown
//! experiment E4).

use crate::cleaner::{delete_matching, restore_rows};
use crate::enumerator::{enumerate_candidates, CandidateDataset, EnumeratorConfig};
use crate::error::CoreError;
use crate::influence::{metric_aggregate, rank_influence_with_cache, InfluenceReport};
use crate::metric::ErrorMetric;
use crate::predicates::{enumerate_predicates, PredicateEnumConfig};
use crate::ranker::{rank_predicates_with_cache, RankedPredicate, RankerConfig};
use crate::sharded::rank_predicates_sharded;
use dbwipes_engine::{
    execute_on_catalog, parse_select, AggregateArg, ExecOptions, GroupedAggregateCache,
    QueryResult, ShardedAggregateCache,
};
use dbwipes_learn::FeatureSpace;
use dbwipes_storage::{Catalog, Condition, ConjunctivePredicate, RowId, ShardedTable, Table};
use std::sync::Arc;
use std::time::Instant;

/// End-to-end configuration of an explanation request.
#[derive(Debug, Clone)]
pub struct ExplainConfig {
    /// Dataset Enumerator parameters.
    pub enumerator: EnumeratorConfig,
    /// Predicate Enumerator parameters.
    pub predicates: PredicateEnumConfig,
    /// Predicate Ranker weights.
    pub ranker: RankerConfig,
    /// Additional columns to exclude from the learned feature space.
    pub exclude_columns: Vec<String>,
    /// Exclude the aggregated measure column (e.g. `temp` for `avg(temp)`)
    /// from learned predicates. Defaults to true: "temp > 100" predicates
    /// trivially remove high values without explaining *which* inputs are
    /// at fault.
    pub exclude_aggregate_column: bool,
    /// Exclude the group-by columns from learned predicates (a predicate
    /// naming the suspicious group itself is not an explanation). Defaults
    /// to true.
    pub exclude_group_by_columns: bool,
    /// Number of horizontal shards the Predicate Ranker partitions the
    /// table into (hash on an adaptively chosen column — see
    /// [`choose_shard_column`]). 1 (the default) uses the single-table
    /// path; larger values run every condition kernel and re-aggregation
    /// per shard, letting zone maps skip shards a condition provably
    /// cannot match (see `docs/TUNING.md`).
    pub shards: usize,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig::standard()
    }
}

impl ExplainConfig {
    /// The default configuration used by the dashboard.
    pub fn standard() -> Self {
        ExplainConfig {
            enumerator: EnumeratorConfig::default(),
            predicates: PredicateEnumConfig::default(),
            ranker: RankerConfig::default(),
            exclude_columns: Vec::new(),
            exclude_aggregate_column: true,
            exclude_group_by_columns: true,
            shards: 1,
        }
    }
}

/// Wall-clock time spent in each backend component (milliseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentTimings {
    /// Preprocessor (F computation + leave-one-out influence).
    pub preprocess_ms: f64,
    /// Dataset Enumerator (cleaning + subgroup discovery).
    pub enumerate_ms: f64,
    /// Predicate Enumerator (decision trees + text mining).
    pub predicates_ms: f64,
    /// Predicate Ranker (per-predicate what-if re-execution).
    pub rank_ms: f64,
}

impl ComponentTimings {
    /// Total time across the four components.
    pub fn total_ms(&self) -> f64 {
        self.preprocess_ms + self.enumerate_ms + self.predicates_ms + self.rank_ms
    }
}

/// A ranked-provenance request: "Query, S, D′, ε" flowing from the frontend
/// to the backend in Figure 1.
#[derive(Debug, Clone)]
pub struct ExplanationRequest {
    /// Indices of the suspicious output rows (S), referring to the query
    /// result being explained.
    pub suspicious_outputs: Vec<usize>,
    /// The user's example suspicious input rows (D′). May be empty, in which
    /// case the top-influence tuples are used as examples.
    pub suspicious_inputs: Vec<RowId>,
    /// The error metric ε.
    pub metric: ErrorMetric,
    /// Pipeline configuration.
    pub config: ExplainConfig,
}

impl ExplanationRequest {
    /// A request with the standard configuration.
    pub fn new(
        suspicious_outputs: Vec<usize>,
        suspicious_inputs: Vec<RowId>,
        metric: ErrorMetric,
    ) -> Self {
        ExplanationRequest {
            suspicious_outputs,
            suspicious_inputs,
            metric,
            config: ExplainConfig::standard(),
        }
    }
}

/// The backend's answer: ranked predicates plus the evidence behind them.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Ranked predicates, best first (Figure 6).
    pub predicates: Vec<RankedPredicate>,
    /// The Preprocessor's influence report over F.
    pub influence: InfluenceReport,
    /// The candidate datasets the Dataset Enumerator produced.
    pub candidates: Vec<CandidateDataset>,
    /// Per-component wall-clock timings.
    pub timings: ComponentTimings,
    /// ε over the selected outputs before cleaning.
    pub base_error: f64,
}

impl Explanation {
    /// The best predicate, if any.
    pub fn best(&self) -> Option<&RankedPredicate> {
        self.predicates.first()
    }

    /// Renders the ranked predicates as a numbered list (the dashboard's
    /// right-hand panel).
    pub fn to_display(&self) -> String {
        if self.predicates.is_empty() {
            return "(no predicates found)".to_string();
        }
        self.predicates
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{:2}. {}", i + 1, p.summary()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The DBWipes backend: a catalog plus the ranked-provenance pipeline.
#[derive(Debug, Default)]
pub struct DbWipes {
    catalog: Catalog,
}

impl DbWipes {
    /// Creates an empty instance.
    pub fn new() -> Self {
        DbWipes { catalog: Catalog::new() }
    }

    /// Creates an instance over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        DbWipes { catalog }
    }

    /// Registers a table (fails if the name is taken).
    pub fn register(&mut self, table: Table) -> Result<(), CoreError> {
        self.catalog.register(table).map_err(CoreError::from)
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the underlying catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parses and executes an aggregate SQL query with lineage capture.
    pub fn query(&self, sql: &str) -> Result<QueryResult, CoreError> {
        let stmt = parse_select(sql)?;
        execute_on_catalog(&self.catalog, &stmt, ExecOptions::default()).map_err(CoreError::from)
    }

    /// Runs the ranked-provenance pipeline for a previously executed query
    /// result.
    pub fn explain(
        &self,
        result: &QueryResult,
        request: &ExplanationRequest,
    ) -> Result<Explanation, CoreError> {
        let table = self.catalog.table(&result.statement.table)?;
        explain_on_table(table, result, request)
    }

    /// Physically removes (soft-deletes) every row of `table_name` matching
    /// the predicate; returns the removed rows for undo.
    pub fn clean(
        &mut self,
        table_name: &str,
        predicate: &ConjunctivePredicate,
    ) -> Result<Vec<RowId>, CoreError> {
        let table = self.catalog.table_mut(table_name)?;
        delete_matching(table, predicate)
    }

    /// Restores rows previously removed by [`DbWipes::clean`].
    pub fn restore(&mut self, table_name: &str, rows: &[RowId]) -> Result<(), CoreError> {
        let table = self.catalog.table_mut(table_name)?;
        restore_rows(table, rows)
    }
}

/// Runs the full backend pipeline against an explicit table (the facade's
/// [`DbWipes::explain`] resolves the table from its catalog and calls this).
pub fn explain_on_table(
    table: &Table,
    result: &QueryResult,
    request: &ExplanationRequest,
) -> Result<Explanation, CoreError> {
    // The incremental re-aggregation cache is built once here (one
    // statement execution), shared between the Preprocessor and the
    // Predicate Ranker, and dropped with the call — its build cost is
    // charged to the Preprocessor. Callers that keep caches alive across
    // explains (the server's cross-brush registry) build the cache
    // themselves and call [`explain_with_cache`] directly.
    let start = Instant::now();
    let cache = GroupedAggregateCache::build(table, &result.statement)?;
    let build_ms = start.elapsed().as_secs_f64() * 1000.0;
    let mut explanation = explain_with_cache(&cache, result, request)?;
    explanation.timings.preprocess_ms += build_ms;
    Ok(explanation)
}

/// How the explain pipeline obtains a [`ShardedTable`] partition when the
/// config asks for more than one shard.
///
/// The default [`FreshPartitioner`] hash-partitions from scratch on every
/// explain — correct but wasteful when the same table is explained
/// repeatedly (every brush of the same result pays the full row-copy
/// cost). A caching caller (the server's cross-brush registry) implements
/// this trait to retain partitions keyed by table identity/version plus
/// the partition parameters, and serve repeats from memory.
pub trait ShardPartitioner {
    /// A hash partition of `table` on `column` into `shards` shards —
    /// freshly built or retrieved from a cache, but always covering the
    /// table's *current* data version.
    fn partition(
        &self,
        table: &Table,
        column: &str,
        shards: usize,
    ) -> Result<Arc<ShardedTable>, CoreError>;
}

/// The default [`ShardPartitioner`]: builds a fresh partition every call.
#[derive(Debug, Default, Clone, Copy)]
pub struct FreshPartitioner;

impl ShardPartitioner for FreshPartitioner {
    fn partition(
        &self,
        table: &Table,
        column: &str,
        shards: usize,
    ) -> Result<Arc<ShardedTable>, CoreError> {
        Ok(Arc::new(ShardedTable::hash(table, column, shards)?))
    }
}

/// Picks the column the Predicate Ranker hash-partitions on, from the
/// candidate pool itself: the first equality-tested column (`=` or `IN`)
/// among the candidates, because hash zone maps can pin exactly those
/// conditions to a single shard. Falls back to the first resolvable GROUP
/// BY column (group-correlated rows tend to collocate), then to the
/// table's first column. `None` only for a column-less schema.
pub fn choose_shard_column(
    table: &Table,
    predicates: &[ConjunctivePredicate],
    group_by: &[String],
) -> Option<String> {
    let resolvable = |name: &str| table.schema().resolve(name).is_ok();
    for predicate in predicates {
        for condition in predicate.conditions() {
            if matches!(condition, Condition::Equals { .. } | Condition::InSet { .. })
                && resolvable(condition.column())
            {
                return Some(condition.column().to_string());
            }
        }
    }
    if let Some(g) = group_by.iter().find(|g| resolvable(g)) {
        return Some(g.clone());
    }
    table.schema().field_at(0).map(|f| f.name.clone())
}

/// Runs the full backend pipeline over an externally-owned
/// [`GroupedAggregateCache`] (which carries the table it was built from).
///
/// The cache must answer for exactly the statement of `result`; a cache
/// built for a different statement would silently score candidates against
/// the wrong query, so the mismatch is rejected up front. On a cache hit
/// the pipeline skips the one-full-execution build cost — the point of
/// keeping caches alive across brushes and repeated explains.
///
/// Sharded rankings (config `shards >= 2`) build a fresh partition per
/// call; see [`explain_with_partitioner`] for the retained-partition
/// variant.
pub fn explain_with_cache(
    cache: &GroupedAggregateCache<'_>,
    result: &QueryResult,
    request: &ExplanationRequest,
) -> Result<Explanation, CoreError> {
    explain_with_partitioner(cache, result, request, &FreshPartitioner)
}

/// [`explain_with_cache`] with an explicit [`ShardPartitioner`], so
/// callers that explain the same table repeatedly (the server) can reuse
/// retained [`ShardedTable`] partitions instead of rebuilding the
/// row-copied shards on every explain.
pub fn explain_with_partitioner(
    cache: &GroupedAggregateCache<'_>,
    result: &QueryResult,
    request: &ExplanationRequest,
    partitioner: &dyn ShardPartitioner,
) -> Result<Explanation, CoreError> {
    if cache.statement() != &result.statement {
        return Err(CoreError::invalid(format!(
            "cache was built for `{}` but the result being explained ran `{}`",
            cache.statement().to_sql(),
            result.statement.to_sql()
        )));
    }
    let table = cache.table();

    // 1. Preprocessor.
    let start = Instant::now();
    let influence =
        rank_influence_with_cache(cache, result, &request.suspicious_outputs, &request.metric)?;
    let preprocess_ms = start.elapsed().as_secs_f64() * 1000.0;

    let f_rows = influence.inputs();

    // D′ for the ranker's agreement score: the user's examples, or the
    // top-influence tuples when none were given. The Dataset Enumerator
    // receives the *user's* (possibly empty) D′ below — fabricating a small
    // capped D′ there would label only a sliver of each true error group
    // positive and starve the decision trees of positive leaves; the
    // enumerator instead falls back to the full influence ranking.
    let examples: Vec<RowId> = if request.suspicious_inputs.is_empty() {
        let k = ((f_rows.len() as f64 * 0.05).ceil() as usize).clamp(1, 50);
        influence.influences.iter().filter(|t| t.influence > 0.0).take(k).map(|t| t.row).collect()
    } else {
        request.suspicious_inputs.clone()
    };
    if examples.is_empty() {
        return Err(CoreError::invalid(
            "no suspicious inputs were provided and no tuple has positive influence on the error",
        ));
    }

    // Feature space over the explainable attributes.
    let mut exclude = request.config.exclude_columns.clone();
    if request.config.exclude_aggregate_column {
        if let Ok((_, call)) = metric_aggregate(result, &request.metric) {
            if let AggregateArg::Expr(e) = &call.arg {
                exclude.extend(e.columns());
            }
        }
    }
    if request.config.exclude_group_by_columns {
        exclude.extend(result.statement.group_by.iter().cloned());
    }
    let space = FeatureSpace::build_excluding(table, &exclude, &f_rows);

    // 2. Dataset Enumerator.
    let start = Instant::now();
    let candidates = enumerate_candidates(
        table,
        &space,
        &request.suspicious_inputs,
        &influence,
        &request.config.enumerator,
    );
    let enumerate_ms = start.elapsed().as_secs_f64() * 1000.0;

    // 3. Predicate Enumerator.
    let start = Instant::now();
    let mut all_predicates = Vec::new();
    for candidate in &candidates {
        all_predicates.extend(enumerate_predicates(
            table,
            &space,
            &f_rows,
            candidate,
            &request.config.predicates,
        ));
    }
    let predicates_ms = start.elapsed().as_secs_f64() * 1000.0;

    // 4. Predicate Ranker, reusing the Preprocessor's cache — or, when the
    // config asks for more than one shard, partitioning the table on an
    // adaptively chosen column (via the caller's partitioner, which may
    // serve a retained partition) and scoring shard-parallel. The
    // per-shard cache build is charged to the ranker; it pays off when
    // zone-map pruning lets equality candidates skip most shards' kernels.
    let start = Instant::now();
    let shard_column = choose_shard_column(table, &all_predicates, &result.statement.group_by);
    let ranked = match (request.config.shards, shard_column) {
        (2.., Some(column)) => {
            let sharded = partitioner.partition(table, &column, request.config.shards)?;
            let shard_cache = ShardedAggregateCache::build(sharded, &result.statement)?;
            rank_predicates_sharded(
                &shard_cache,
                result,
                &request.suspicious_outputs,
                &examples,
                &request.metric,
                all_predicates,
                &request.config.ranker,
            )?
        }
        _ => rank_predicates_with_cache(
            cache,
            result,
            &request.suspicious_outputs,
            &examples,
            &request.metric,
            all_predicates,
            &request.config.ranker,
        )?,
    };
    let rank_ms = start.elapsed().as_secs_f64() * 1000.0;

    Ok(Explanation {
        predicates: ranked,
        base_error: influence.base_error,
        influence,
        candidates,
        timings: ComponentTimings { preprocess_ms, enumerate_ms, predicates_ms, rank_ms },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_data::{generate_sensor, SensorConfig};
    use dbwipes_storage::Value;

    fn sensor_dbwipes() -> (DbWipes, dbwipes_data::SensorDataset) {
        let ds = generate_sensor(&SensorConfig {
            num_readings: 5_400,
            failing_sensors: vec![15],
            ..SensorConfig::small()
        });
        let mut db = DbWipes::new();
        db.register(ds.table.clone()).unwrap();
        (db, ds)
    }

    #[test]
    fn end_to_end_sensor_explanation_names_the_failing_sensor() {
        let (db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        assert!(result.len() > 1);

        // S = windows with suspiciously high temperature spread, exactly how
        // Figure 4's user brushes the high-stddev points.
        let std_col = result.column_index("std_temp").unwrap();
        let suspicious: Vec<usize> = (0..result.len())
            .filter(|&i| result.rows[i][std_col].as_f64().unwrap_or(0.0) > 8.0)
            .collect();
        assert!(!suspicious.is_empty());

        // D' = a few corrupted readings from those windows.
        let examples: Vec<RowId> = ds.error_rows().into_iter().take(8).collect();
        let metric = ErrorMetric::too_high("std_temp", 4.0);
        let request = ExplanationRequest::new(suspicious, examples, metric);
        let explanation = db.explain(&result, &request).unwrap();

        assert!(explanation.base_error > 0.0);
        assert!(!explanation.predicates.is_empty());
        assert!(!explanation.candidates.is_empty());
        assert!(explanation.timings.total_ms() > 0.0);
        let best = explanation.best().unwrap();
        assert!(
            best.predicate.to_string().contains("sensorid")
                || best.predicate.to_string().contains("voltage"),
            "best predicate: {}",
            best.predicate
        );
        assert!(best.improvement > 0.5, "best = {}", best.summary());
        assert!(explanation.to_display().contains("1."));
    }

    #[test]
    fn explanation_without_examples_derives_them_from_influence() {
        let (db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        let std_col = result.column_index("std_temp").unwrap();
        let suspicious: Vec<usize> = (0..result.len())
            .filter(|&i| result.rows[i][std_col].as_f64().unwrap_or(0.0) > 8.0)
            .collect();
        let request =
            ExplanationRequest::new(suspicious, Vec::new(), ErrorMetric::too_high("std_temp", 4.0));
        let explanation = db.explain(&result, &request).unwrap();
        assert!(!explanation.predicates.is_empty());
        assert!(explanation.best().unwrap().improvement > 0.3);
    }

    #[test]
    fn external_cache_matches_internal_build_and_rejects_mismatches() {
        let (db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        let std_col = result.column_index("std_temp").unwrap();
        let suspicious: Vec<usize> = (0..result.len())
            .filter(|&i| result.rows[i][std_col].as_f64().unwrap_or(0.0) > 8.0)
            .collect();
        let examples: Vec<RowId> = ds.error_rows().into_iter().take(8).collect();
        let request =
            ExplanationRequest::new(suspicious, examples, ErrorMetric::too_high("std_temp", 4.0));

        let table = db.catalog().table("readings").unwrap();
        let cache = GroupedAggregateCache::build(table, &result.statement).unwrap();
        let external = explain_with_cache(&cache, &result, &request).unwrap();
        let internal = db.explain(&result, &request).unwrap();
        assert_eq!(external.predicates.len(), internal.predicates.len());
        for (a, b) in external.predicates.iter().zip(&internal.predicates) {
            assert_eq!(a.predicate, b.predicate);
            assert_eq!(a.score, b.score);
        }
        assert_eq!(external.base_error, internal.base_error);

        // A cache built for a different statement must be rejected, not
        // silently scored against the wrong query.
        let other = db.query("SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid").unwrap();
        let err = explain_with_cache(&cache, &other, &request).unwrap_err();
        assert!(err.to_string().contains("cache was built for"), "{err}");
    }

    #[test]
    fn sharded_explain_matches_unsharded() {
        let (db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        let std_col = result.column_index("std_temp").unwrap();
        let suspicious: Vec<usize> = (0..result.len())
            .filter(|&i| result.rows[i][std_col].as_f64().unwrap_or(0.0) > 8.0)
            .collect();
        let examples: Vec<RowId> = ds.error_rows().into_iter().take(8).collect();
        let metric = ErrorMetric::too_high("std_temp", 4.0);
        let flat = ExplanationRequest::new(suspicious.clone(), examples.clone(), metric.clone());
        let mut request = ExplanationRequest::new(suspicious, examples, metric);
        request.config.shards = 4;
        let sharded = db.explain(&result, &request).unwrap();
        let unsharded = db.explain(&result, &flat).unwrap();
        // Same predicate set with matching evidence; scores may differ
        // only in float round-off of merged partial sums (which could
        // reorder exact ties, so compare sorted by rendering).
        assert_eq!(sharded.predicates.len(), unsharded.predicates.len());
        let by_name = |e: &Explanation| {
            let mut v: Vec<_> = e
                .predicates
                .iter()
                .map(|p| (p.predicate.to_string(), p.score, p.matched_rows))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        for (a, b) in by_name(&sharded).iter().zip(by_name(&unsharded).iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9, "{}: {} vs {}", a.0, a.1, b.1);
            assert_eq!(a.2, b.2, "{}", a.0);
        }
    }

    #[test]
    fn shard_column_prefers_equality_tested_candidates() {
        let (db, _) = sensor_dbwipes();
        let table = db.catalog().table("readings").unwrap();

        // First equality-tested candidate column wins, even when it is not
        // the first condition of the first predicate.
        let candidates = vec![
            ConjunctivePredicate::new(vec![Condition::at_least("temp", 80.0)]),
            ConjunctivePredicate::new(vec![
                Condition::at_least("voltage", 2.0),
                Condition::equals("sensorid", 15),
            ]),
        ];
        assert_eq!(
            choose_shard_column(table, &candidates, &["window".to_string()]),
            Some("sensorid".to_string())
        );

        // No equality condition anywhere: fall back to the first resolvable
        // GROUP BY column (skipping columns the table does not have).
        let ranges = vec![ConjunctivePredicate::new(vec![Condition::at_least("temp", 80.0)])];
        assert_eq!(
            choose_shard_column(table, &ranges, &["nope".to_string(), "window".to_string()]),
            Some("window".to_string())
        );

        // Nothing usable at all: first schema column.
        let first = table.schema().field_at(0).unwrap().name.clone();
        assert_eq!(choose_shard_column(table, &[], &[]), Some(first.clone()));

        // Unresolvable equality columns are skipped, not blindly chosen.
        let phantom = vec![ConjunctivePredicate::new(vec![Condition::equals("ghost", 1)])];
        assert_eq!(choose_shard_column(table, &phantom, &[]), Some(first));
    }

    /// A [`ShardPartitioner`] that counts calls and retains partitions per
    /// (column, shards) — the shape of the server's registry tier.
    #[derive(Default)]
    struct CountingPartitioner {
        built: std::sync::atomic::AtomicUsize,
        served: std::sync::Mutex<std::collections::HashMap<(String, usize), Arc<ShardedTable>>>,
    }

    impl ShardPartitioner for CountingPartitioner {
        fn partition(
            &self,
            table: &Table,
            column: &str,
            shards: usize,
        ) -> Result<Arc<ShardedTable>, CoreError> {
            let mut served = self.served.lock().unwrap();
            if let Some(p) = served.get(&(column.to_string(), shards)) {
                if p.covers(table) {
                    return Ok(Arc::clone(p));
                }
            }
            self.built.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let fresh = Arc::new(ShardedTable::hash(table, column, shards)?);
            served.insert((column.to_string(), shards), Arc::clone(&fresh));
            Ok(fresh)
        }
    }

    #[test]
    fn repeated_sharded_explains_reuse_retained_partitions() {
        let (db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        let std_col = result.column_index("std_temp").unwrap();
        let suspicious: Vec<usize> = (0..result.len())
            .filter(|&i| result.rows[i][std_col].as_f64().unwrap_or(0.0) > 8.0)
            .collect();
        let examples: Vec<RowId> = ds.error_rows().into_iter().take(8).collect();
        let mut request =
            ExplanationRequest::new(suspicious, examples, ErrorMetric::too_high("std_temp", 4.0));
        request.config.shards = 4;

        let table = db.catalog().table("readings").unwrap();
        let cache = GroupedAggregateCache::build(table, &result.statement).unwrap();
        let partitioner = CountingPartitioner::default();
        let first = explain_with_partitioner(&cache, &result, &request, &partitioner).unwrap();
        let second = explain_with_partitioner(&cache, &result, &request, &partitioner).unwrap();
        // One build, served twice: the second explain reused the retained
        // partition instead of re-hashing every row.
        assert_eq!(partitioner.built.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(first.predicates.len(), second.predicates.len());
        for (a, b) in first.predicates.iter().zip(&second.predicates) {
            assert_eq!(a.predicate, b.predicate);
            assert_eq!(a.score, b.score);
        }

        // And the partitioner path is identical to the fresh-build path.
        let fresh = explain_with_cache(&cache, &result, &request).unwrap();
        for (a, b) in first.predicates.iter().zip(&fresh.predicates) {
            assert_eq!(a.predicate, b.predicate);
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn no_error_and_no_examples_is_rejected() {
        let (db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        // Metric threshold far above everything: no tuple has positive influence.
        let request = ExplanationRequest::new(
            vec![0],
            Vec::new(),
            ErrorMetric::too_high("std_temp", 10_000.0),
        );
        assert!(db.explain(&result, &request).is_err());
    }

    #[test]
    fn clean_and_restore_round_trip() {
        let (mut db, ds) = sensor_dbwipes();
        let result = db.query(&ds.window_query()).unwrap();
        let before_rows = db.catalog().table("readings").unwrap().visible_rows();
        let removed = db.clean("readings", &ds.truth.true_predicate.clone()).unwrap();
        assert!(!removed.is_empty());
        assert_eq!(
            db.catalog().table("readings").unwrap().visible_rows(),
            before_rows - removed.len()
        );
        // Re-running the query after cleaning lowers the maximum average.
        let cleaned_result = db.query(&ds.window_query()).unwrap();
        let max_before = max_avg(&result);
        let max_after = max_avg(&cleaned_result);
        assert!(max_after < max_before);
        db.restore("readings", &removed).unwrap();
        assert_eq!(db.catalog().table("readings").unwrap().visible_rows(), before_rows);
        assert!(db.clean("missing", &ds.truth.true_predicate.clone()).is_err());
    }

    fn max_avg(result: &QueryResult) -> f64 {
        let col = result.column_index("avg_temp").unwrap();
        result.rows.iter().filter_map(|r| r[col].as_f64()).fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn facade_accessors() {
        let (mut db, _) = sensor_dbwipes();
        assert!(db.catalog().contains("readings"));
        assert_eq!(db.catalog().len(), 1);
        db.catalog_mut()
            .table_mut("readings")
            .unwrap()
            .push_row(vec![
                Value::Int(0),
                Value::Timestamp(0),
                Value::Int(0),
                Value::Int(0),
                Value::Float(20.0),
                Value::Float(40.0),
                Value::Float(100.0),
                Value::Float(2.7),
            ])
            .unwrap();
        let db2 = DbWipes::with_catalog(db.catalog().clone());
        assert!(db2.catalog().contains("readings"));
        assert!(db2.query("SELECT avg(temp) FROM readings").is_ok());
        assert!(db2.query("SELECT avg(temp) FROM missing").is_err());
        assert!(db2.query("not sql").is_err());
    }
}

//! Clean as you query: applying ranked predicates to the running query.
//!
//! "Finally, the audience can clean the database by clicking on predicates
//! to remove them from future queries" (paper §1); "the user can click on a
//! hypothesis to see the result of the original query on a version of the
//! database that does not contain tuples satisfying the hypothesis. The
//! visualization and query automatically update" (§2.2.1).
//!
//! Two cleaning modes are supported, mirroring the demo:
//!
//! * **Query rewriting** ([`CleaningSession`]) — each applied predicate adds
//!   `AND NOT (predicate)` to the WHERE clause; the base data is untouched
//!   and predicates can be un-applied.
//! * **Physical cleaning** ([`delete_matching`] / [`restore_rows`]) — the
//!   matching rows are soft-deleted from the table, which affects every
//!   later query; the returned row list allows undo.

use crate::error::CoreError;
use dbwipes_engine::{execute, ExecOptions, QueryResult, SelectStatement};
use dbwipes_storage::{ConjunctivePredicate, RowId, Table};

/// An interactive cleaning session over one base query.
#[derive(Debug, Clone)]
pub struct CleaningSession {
    base: SelectStatement,
    applied: Vec<ConjunctivePredicate>,
}

impl CleaningSession {
    /// Starts a session from the user's original query.
    pub fn new(base: SelectStatement) -> Self {
        CleaningSession { base, applied: Vec::new() }
    }

    /// The original statement without any cleaning predicates.
    pub fn base_statement(&self) -> &SelectStatement {
        &self.base
    }

    /// The predicates applied so far, in application order.
    pub fn applied(&self) -> &[ConjunctivePredicate] {
        &self.applied
    }

    /// The current statement: the base query with `AND NOT (p)` for every
    /// applied predicate — exactly what the dashboard's query form shows.
    pub fn current_statement(&self) -> SelectStatement {
        let mut stmt = self.base.clone();
        for p in &self.applied {
            stmt = stmt.with_additional_filter(p.to_exclusion_expr());
        }
        stmt
    }

    /// The current statement rendered as SQL.
    pub fn current_sql(&self) -> String {
        self.current_statement().to_sql()
    }

    /// Applies (clicks) a predicate. Applying the same predicate twice is a
    /// no-op.
    pub fn apply(&mut self, predicate: ConjunctivePredicate) {
        if predicate.is_trivial() || self.applied.contains(&predicate) {
            return;
        }
        self.applied.push(predicate);
    }

    /// Un-applies the most recently applied predicate.
    pub fn undo(&mut self) -> Option<ConjunctivePredicate> {
        self.applied.pop()
    }

    /// Removes every applied predicate.
    pub fn reset(&mut self) {
        self.applied.clear();
    }

    /// Executes the current (cleaned) statement against the table.
    pub fn execute(&self, table: &Table) -> Result<QueryResult, CoreError> {
        execute(table, &self.current_statement(), ExecOptions::default()).map_err(CoreError::from)
    }
}

/// Physically (soft-)deletes every visible row matching the predicate.
/// Returns the deleted rows so the operation can be undone with
/// [`restore_rows`].
pub fn delete_matching(
    table: &mut Table,
    predicate: &ConjunctivePredicate,
) -> Result<Vec<RowId>, CoreError> {
    let rows = predicate.matching_rows(table);
    table.delete_rows(&rows).map_err(CoreError::from)?;
    Ok(rows)
}

/// Restores rows previously removed by [`delete_matching`].
pub fn restore_rows(table: &mut Table, rows: &[RowId]) -> Result<(), CoreError> {
    for &r in rows {
        table.restore_row(r).map_err(CoreError::from)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_engine::parse_select;
    use dbwipes_storage::{Condition, DataType, Schema, Value};

    fn table() -> Table {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("window", DataType::Int),
                ("sensorid", DataType::Int),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        for i in 0..40i64 {
            let sensor = i % 4;
            let temp = if sensor == 3 { 120.0 } else { 20.0 };
            t.push_row(vec![Value::Int(i % 2), Value::Int(sensor), Value::Float(temp)]).unwrap();
        }
        t
    }

    fn base() -> SelectStatement {
        parse_select("SELECT window, avg(temp) FROM readings GROUP BY window").unwrap()
    }

    #[test]
    fn applying_a_predicate_rewrites_the_query_and_fixes_the_result() {
        let t = table();
        let mut session = CleaningSession::new(base());
        let before = session.execute(&t).unwrap();
        // Window 1 (output row 1) contains sensor 3's 120-degree readings.
        assert!(before.value_f64(1, "avg_temp").unwrap().unwrap() > 40.0);
        assert_eq!(session.applied().len(), 0);

        session.apply(ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]));
        let sql = session.current_sql();
        assert!(sql.contains("NOT (sensorid = 3)"), "{sql}");
        let after = session.execute(&t).unwrap();
        assert_eq!(after.value_f64(1, "avg_temp").unwrap().unwrap(), 20.0);
        // Base statement is untouched.
        assert_eq!(session.base_statement().to_sql(), base().to_sql());
    }

    #[test]
    fn apply_is_idempotent_and_ignores_trivial_predicates() {
        let mut session = CleaningSession::new(base());
        let p = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]);
        session.apply(p.clone());
        session.apply(p.clone());
        session.apply(ConjunctivePredicate::always_true());
        assert_eq!(session.applied().len(), 1);
    }

    #[test]
    fn undo_and_reset() {
        let t = table();
        let mut session = CleaningSession::new(base());
        let p1 = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]);
        let p2 = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 2)]);
        session.apply(p1.clone());
        session.apply(p2.clone());
        assert_eq!(session.applied().len(), 2);
        assert_eq!(session.undo(), Some(p2));
        assert_eq!(session.applied().len(), 1);
        let r = session.execute(&t).unwrap();
        assert_eq!(r.value_f64(1, "avg_temp").unwrap().unwrap(), 20.0);
        session.reset();
        assert!(session.applied().is_empty());
        assert!(session.undo().is_none());
        let r = session.execute(&t).unwrap();
        assert!(r.value_f64(1, "avg_temp").unwrap().unwrap() > 40.0);
    }

    #[test]
    fn physical_cleaning_and_restore() {
        let mut t = table();
        let p = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]);
        let deleted = delete_matching(&mut t, &p).unwrap();
        assert_eq!(deleted.len(), 10);
        assert_eq!(t.visible_rows(), 30);
        // Deleting again removes nothing new.
        let again = delete_matching(&mut t, &p).unwrap();
        assert!(again.is_empty());
        restore_rows(&mut t, &deleted).unwrap();
        assert_eq!(t.visible_rows(), 40);
        assert!(restore_rows(&mut t, &[RowId(9999)]).is_err());
    }
}

//! Scoped-thread fan-out for the embarrassingly parallel hot loops (the
//! Ranker's per-candidate scoring and the Preprocessor's per-tuple
//! leave-one-out), using only `std::thread` — no extra dependencies under
//! the offline shims.
//!
//! The fan-out width defaults to [`std::thread::available_parallelism`]
//! and can be overridden with the `DBWIPES_THREADS` environment variable
//! (useful on machines whose reported CPU count does not reflect the
//! cores actually usable — e.g. a dev container reporting 1 CPU — and for
//! pinning benchmarks to a fixed width). Results are deterministic
//! regardless of the width: items are mapped in order, so the override
//! only affects wall-clock time.

use std::thread;

/// The fan-out width parallel loops will use: the value of the
/// `DBWIPES_THREADS` environment variable when set to a positive integer,
/// otherwise the machine's available parallelism (1 when unknown).
/// Benchmarks print this so recorded timings carry their thread context.
pub fn effective_parallelism() -> usize {
    parallelism_from(std::env::var("DBWIPES_THREADS").ok().as_deref())
}

/// [`effective_parallelism`] for an explicit override value (`None` =
/// variable unset). Separated so tests can exercise the interpretation
/// without mutating process environment — concurrent `setenv`/`getenv`
/// is undefined behavior on glibc, and the test binary runs threaded.
fn parallelism_from(raw: Option<&str>) -> usize {
    if let Some(raw) = raw {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items`, preserving order. Items are split into
/// contiguous chunks, one per thread of [`effective_parallelism`] (capped
/// by the item count), and each chunk runs on its own scoped thread; with
/// one item or one thread the loop runs inline. `f` receives the item's
/// index alongside the item, so callers can address shared per-item
/// context.
pub(crate) fn map_chunked<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = effective_parallelism().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * chunk_size + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("worker thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<i64> = (0..103).collect();
        let out = map_chunked(&items, |i, &v| (i as i64, v * 2));
        assert_eq!(out.len(), 103);
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i as i64);
            assert_eq!(*doubled, 2 * i as i64);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(map_chunked::<i32, i32, _>(&[], |_, v| *v).is_empty());
        assert_eq!(map_chunked(&[7], |i, v| i + *v), vec![7]);
    }

    #[test]
    fn override_interpretation() {
        let machine = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Unset: the machine's parallelism.
        assert_eq!(parallelism_from(None), machine);
        // Positive integers (whitespace tolerated) win.
        for (raw, expect) in [("1", 1), ("2", 2), (" 7 ", 7), ("16", 16)] {
            assert_eq!(parallelism_from(Some(raw)), expect);
        }
        // Invalid or zero values fall back to the machine default.
        for bogus in ["0", "-3", "lots", ""] {
            assert_eq!(parallelism_from(Some(bogus)), machine);
        }
        // The live entry point agrees with the pure interpretation of the
        // process's actual (unmutated) environment.
        assert_eq!(
            effective_parallelism(),
            parallelism_from(std::env::var("DBWIPES_THREADS").ok().as_deref())
        );
    }
}

//! Scoped-thread fan-out for the embarrassingly parallel hot loops (the
//! Ranker's per-candidate scoring and the Preprocessor's per-tuple
//! leave-one-out), using only `std::thread` — no extra dependencies under
//! the offline shims.

use std::thread;

/// Maps `f` over `items`, preserving order. Items are split into
/// contiguous chunks, one per available core (capped by the item count),
/// and each chunk runs on its own scoped thread; with one item or one core
/// the loop runs inline. `f` receives the item's index alongside the item,
/// so callers can address shared per-item context.
pub(crate) fn map_chunked<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(ci * chunk_size + i, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("worker thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_indices() {
        let items: Vec<i64> = (0..103).collect();
        let out = map_chunked(&items, |i, &v| (i as i64, v * 2));
        assert_eq!(out.len(), 103);
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i as i64);
            assert_eq!(*doubled, 2 * i as i64);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(map_chunked::<i32, i32, _>(&[], |_, v| *v).is_empty());
        assert_eq!(map_chunked(&[7], |i, v| i + *v), vec![7]);
    }
}

//! # dbwipes-core
//!
//! The Ranked Provenance System at the heart of DBWipes (Wu, Madden,
//! Stonebraker: *A Demonstration of DBWipes: Clean as You Query*, VLDB
//! 2012). Given an aggregate query, a set of suspicious outputs S, an error
//! metric ε and (optionally) example suspicious inputs D′, the system
//! returns a ranked list of human-readable predicates that describe the
//! inputs responsible for the error and, when excluded from the query,
//! minimise ε.
//!
//! The pipeline mirrors the paper's backend architecture (Figure 1, §2.2.2):
//!
//! 1. **Preprocessor** ([`influence`]) — computes F, the inputs of S, and
//!    ranks every tuple by leave-one-out influence on ε.
//! 2. **Dataset Enumerator** ([`enumerator`]) — cleans D′ (k-means / naive
//!    Bayes) and extends it via CN2-SD subgroup discovery into candidate
//!    datasets Dᶜᵢ.
//! 3. **Predicate Enumerator** ([`predicates`]) — trains several decision
//!    trees per candidate (gini / gain ratio) and converts positive leaf
//!    paths (plus mined text-containment conditions) into compact
//!    predicates.
//! 4. **Predicate Ranker** ([`ranker`]) — scores each predicate by ε
//!    improvement, agreement with D′ and complexity.
//!
//! [`DbWipes`] is the facade tying the steps together; [`cleaner`]
//! implements the clean-as-you-query loop (query rewriting and physical
//! deletion); [`baselines`] implements the traditional-provenance and
//! tuple-ranking baselines the paper argues against.
//!
//! ## Example
//!
//! ```
//! use dbwipes_core::{DbWipes, ErrorMetric, ExplanationRequest};
//! use dbwipes_data::{generate_sensor, SensorConfig};
//!
//! // A small synthetic Intel-Lab-style trace with one failing sensor.
//! let data = generate_sensor(&SensorConfig {
//!     num_readings: 2_700, failing_sensors: vec![15], ..SensorConfig::small()
//! });
//! let mut db = DbWipes::new();
//! db.register(data.table.clone()).unwrap();
//!
//! // Figure 4's query: temperature statistics per 30-minute window.
//! let result = db
//!     .query("SELECT window, avg(temp), stddev(temp) FROM readings GROUP BY window")
//!     .unwrap();
//!
//! // Brush the windows whose temperature spread looks suspicious and ask "why?".
//! let suspicious: Vec<usize> = (0..result.len())
//!     .filter(|&i| result.value_f64(i, "stddev_temp").unwrap().unwrap_or(0.0) > 5.0)
//!     .collect();
//! let request =
//!     ExplanationRequest::new(suspicious, vec![], ErrorMetric::too_high("stddev_temp", 3.0));
//! let explanation = db.explain(&result, &request).unwrap();
//! assert!(!explanation.predicates.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod api;
pub mod baselines;
pub mod cleaner;
pub mod enumerator;
pub mod error;
pub mod influence;
pub mod metric;
pub mod parallel;
pub mod predicates;
pub mod ranker;
pub mod sharded;

pub use api::{
    choose_shard_column, explain_on_table, explain_with_cache, explain_with_partitioner,
    ComponentTimings, DbWipes, ExplainConfig, Explanation, ExplanationRequest, FreshPartitioner,
    ShardPartitioner,
};
pub use cleaner::{delete_matching, restore_rows, CleaningSession};
pub use enumerator::{
    enumerate_candidates, CandidateDataset, CandidateSource, CleaningStrategy, EnumeratorConfig,
};
pub use error::CoreError;
pub use influence::{rank_influence, rank_influence_with_cache, InfluenceReport, TupleInfluence};
pub use metric::{suggest_metrics, Combine, ErrorMetric, MetricKind};
pub use parallel::effective_parallelism;
pub use predicates::{enumerate_predicates, PredicateEnumConfig};
pub use ranker::{rank_predicates, rank_predicates_with_cache, RankedPredicate, RankerConfig};
pub use sharded::rank_predicates_sharded;

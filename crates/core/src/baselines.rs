//! Baseline explanation strategies DBWipes is compared against.
//!
//! The paper motivates ranked provenance by the shortcomings of existing
//! approaches (§1, §4):
//!
//! * **Coarse-grained provenance** shows the operator pipeline — "every
//!   input went through the same sequence of operators", so as a tuple set
//!   it is the whole input relation.
//! * **Fine-grained provenance** (Trio-style lineage) returns *all* inputs
//!   of the selected outputs — thousands of tuples with "very low
//!   precision".
//! * **Top-k influence** ranks individual tuples (as sensitivity-analysis
//!   systems do) but produces no human-readable description.
//! * **Causality-style responsibility** (Meliou et al.) ranks tuples by
//!   `1/(1 + |Γ|)`, where Γ is the smallest set of additional tuples that
//!   must also be removed to fix the output; we approximate Γ greedily by
//!   influence order.
//! * **Exhaustive single-attribute predicates** — the simplest predicate
//!   baseline: try every `column = value` / threshold condition in
//!   isolation and keep the one that best reduces ε.
//!
//! Experiment E5 scores all of these against ground truth alongside the
//! full DBWipes pipeline.

use crate::error::CoreError;
use crate::influence::InfluenceReport;
use crate::metric::ErrorMetric;
use crate::ranker::{rank_predicates, RankedPredicate, RankerConfig};
use dbwipes_engine::QueryResult;
use dbwipes_provenance::ProvenanceAnswer;
use dbwipes_storage::{Condition, ConjunctivePredicate, DataType, RowId, Table, Value};
use std::collections::BTreeSet;

/// Traditional fine-grained provenance: every input of the selected
/// outputs (the paper's F), with no ranking.
pub fn fine_grained_provenance(result: &QueryResult, selected: &[usize]) -> ProvenanceAnswer {
    ProvenanceAnswer::new(result.inputs_of_rows(selected))
}

/// Coarse-grained provenance as a tuple set: since the answer is "the
/// operator graph", the corresponding input set is every visible row of the
/// queried table.
pub fn coarse_grained_provenance(table: &Table) -> ProvenanceAnswer {
    ProvenanceAnswer::new(table.visible_row_ids())
}

/// Top-k influence baseline: the `k` tuples with the largest leave-one-out
/// influence, as a plain tuple set (no description).
pub fn top_k_influence(report: &InfluenceReport, k: usize) -> ProvenanceAnswer {
    ProvenanceAnswer::new(report.top_k(k))
}

/// Responsibility of each tuple in the style of causality-based provenance:
/// `responsibility = 1 / (1 + |Γ|)` where Γ is approximated greedily — tuples
/// are removed in decreasing influence order until ε reaches zero, and a
/// tuple's Γ is the set of *other* tuples removed before the error vanished.
/// Tuples not needed to fix the error get responsibility 0.
pub fn greedy_responsibility(report: &InfluenceReport) -> Vec<(RowId, f64)> {
    let base = report.base_error;
    if base <= 0.0 {
        return report.influences.iter().map(|t| (t.row, 0.0)).collect();
    }
    // Greedy: walk tuples by decreasing influence, accumulating removed
    // error until the base error is covered.
    let mut remaining = base;
    let mut contingency_size = 0usize;
    let mut fixed_at: Option<usize> = None;
    for (i, t) in report.influences.iter().enumerate() {
        if t.influence <= 0.0 {
            break;
        }
        remaining -= t.influence;
        contingency_size = i; // tuples removed before this one
        if remaining <= 1e-9 {
            fixed_at = Some(i);
            break;
        }
    }
    report
        .influences
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let responsibility = match fixed_at {
                Some(last) if i <= last && t.influence > 0.0 => {
                    1.0 / (1.0 + contingency_size as f64)
                }
                _ => 0.0,
            };
            (t.row, responsibility)
        })
        .collect()
}

/// Configuration of the exhaustive single-attribute predicate baseline.
#[derive(Debug, Clone, Copy)]
pub struct SingleAttributeConfig {
    /// Number of candidate thresholds per numeric column.
    pub thresholds_per_column: usize,
    /// Maximum number of distinct values per categorical column.
    pub max_categorical_values: usize,
    /// Ranker weights used to score the generated predicates.
    pub ranker: RankerConfig,
}

impl Default for SingleAttributeConfig {
    fn default() -> Self {
        SingleAttributeConfig {
            thresholds_per_column: 8,
            max_categorical_values: 40,
            ranker: RankerConfig::default(),
        }
    }
}

/// Exhaustive single-attribute predicate search: generates every
/// one-condition predicate over F's attribute values and ranks them with the
/// same ranker DBWipes uses (and therefore the same incremental
/// re-aggregation cache — the statement executes once for the whole
/// candidate pool, however many thresholds are generated). Returns the
/// ranked list (best first).
pub fn single_attribute_predicates(
    table: &Table,
    result: &QueryResult,
    selected: &[usize],
    examples: &[RowId],
    metric: &ErrorMetric,
    config: &SingleAttributeConfig,
) -> Result<Vec<RankedPredicate>, CoreError> {
    let f_rows = result.inputs_of_rows(selected);
    let mut candidates: Vec<ConjunctivePredicate> = Vec::new();
    for field in table.schema().fields() {
        match field.dtype {
            DataType::Int | DataType::Float | DataType::Timestamp => {
                let mut values: Vec<f64> = f_rows
                    .iter()
                    .filter_map(|&r| {
                        table.value_by_name(r, &field.name).ok().and_then(|v| v.as_f64())
                    })
                    .collect();
                if values.is_empty() {
                    continue;
                }
                values.sort_by(|a, b| a.total_cmp(b));
                values.dedup();
                let k = config.thresholds_per_column.max(1);
                for q in 1..=k {
                    let idx = (q * values.len() / (k + 1)).min(values.len() - 1);
                    let th = values[idx];
                    candidates.push(ConjunctivePredicate::new(vec![Condition::above(
                        field.name.clone(),
                        th,
                    )]));
                    candidates.push(ConjunctivePredicate::new(vec![Condition::at_most(
                        field.name.clone(),
                        th,
                    )]));
                }
            }
            DataType::Str => {
                let mut seen: BTreeSet<String> = BTreeSet::new();
                for &r in &f_rows {
                    if let Ok(Value::Str(s)) = table.value_by_name(r, &field.name) {
                        if seen.len() >= config.max_categorical_values {
                            break;
                        }
                        if seen.insert(s.clone()) {
                            candidates.push(ConjunctivePredicate::new(vec![Condition::equals(
                                field.name.clone(),
                                Value::Str(s),
                            )]));
                        }
                    }
                }
            }
            DataType::Bool | DataType::Null => {}
        }
    }
    rank_predicates(table, result, selected, examples, metric, candidates, &config.ranker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::rank_influence;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, Schema};

    fn setup() -> (Catalog, Vec<RowId>) {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("window", DataType::Int),
                ("sensorid", DataType::Int),
                ("room", DataType::Str),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        let mut broken = Vec::new();
        for i in 0..100i64 {
            let sensor = i % 10;
            let is_broken = sensor == 4;
            let temp = if is_broken { 120.0 + (i % 3) as f64 } else { 21.0 + (i % 4) as f64 };
            let room = if sensor % 2 == 0 { "lab" } else { "office" };
            let rid = t
                .push_row(vec![
                    Value::Int(0),
                    Value::Int(sensor),
                    Value::str(room),
                    Value::Float(temp),
                ])
                .unwrap();
            if is_broken {
                broken.push(rid);
            }
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        (c, broken)
    }

    #[test]
    fn fine_grained_returns_everything_coarse_returns_more() {
        let (c, _) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let fine = fine_grained_provenance(&r, &[0]);
        assert_eq!(fine.len(), 100);
        let coarse = coarse_grained_provenance(c.table("readings").unwrap());
        assert_eq!(coarse.len(), 100);
        // With a WHERE clause, fine-grained shrinks but coarse does not.
        let r = execute_sql(
            &c,
            "SELECT window, avg(temp) FROM readings WHERE room = 'lab' GROUP BY window",
        )
        .unwrap();
        assert!(fine_grained_provenance(&r, &[0]).len() < 100);
        assert_eq!(coarse_grained_provenance(c.table("readings").unwrap()).len(), 100);
    }

    #[test]
    fn top_k_influence_finds_the_broken_rows() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[0], &metric).unwrap();
        let top = top_k_influence(&report, broken.len());
        let hits = broken.iter().filter(|b| top.contains(**b)).count();
        assert_eq!(hits, broken.len());
        // Requesting more rows than exist is fine.
        assert!(top_k_influence(&report, 10_000).len() <= 100);
    }

    #[test]
    fn greedy_responsibility_assigns_nonzero_only_to_needed_tuples() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[0], &metric).unwrap();
        let resp = greedy_responsibility(&report);
        assert_eq!(resp.len(), 100);
        let positive: Vec<&(RowId, f64)> = resp.iter().filter(|(_, r)| *r > 0.0).collect();
        assert!(!positive.is_empty());
        // Every tuple with positive responsibility is one of the broken rows.
        for (row, _) in &positive {
            assert!(broken.contains(row));
        }
        // All positive responsibilities share the same contingency size.
        let first = positive[0].1;
        assert!(positive.iter().all(|(_, r)| (*r - first).abs() < 1e-12));

        // When there is no error, responsibility is zero everywhere.
        let report = rank_influence(
            c.table("readings").unwrap(),
            &r,
            &[0],
            &ErrorMetric::too_high("avg_temp", 10_000.0),
        )
        .unwrap();
        assert!(greedy_responsibility(&report).iter().all(|(_, r)| *r == 0.0));
    }

    #[test]
    fn single_attribute_search_finds_the_sensor_but_needs_more_conditions_for_conjunctions() {
        let (c, broken) = setup();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let ranked = single_attribute_predicates(
            c.table("readings").unwrap(),
            &r,
            &[0],
            &broken,
            &metric,
            &SingleAttributeConfig::default(),
        )
        .unwrap();
        assert!(!ranked.is_empty());
        // Every returned predicate has exactly one condition.
        assert!(ranked.iter().all(|p| p.complexity == 1));
        // The best one should isolate the broken sensor via temp or sensorid.
        let best = &ranked[0];
        assert!(best.improvement > 0.8, "best = {}", best.summary());
    }
}

//! The shard-parallel Predicate Ranker.
//!
//! [`rank_predicates_sharded`] answers the same "what if I clicked this
//! predicate" question as [`rank_predicates_with_cache`], but over a
//! [`ShardedTable`] partition: every condition kernel runs per shard (on a
//! shard-sized universe), exclusion sets stay in per-shard [`RowSet`]
//! bitmaps, ε re-derivation merges per-shard aggregate states through
//! [`ShardedAggregateCache`], and match/agreement counts are
//! scatter-gather popcounts summed across shards.
//!
//! Two properties make this profitable and safe:
//!
//! * **Zone-map pruning** — [`ShardedTable::condition_may_match`]
//!   guarantees that a pruned (shard, condition) pair's kernel would
//!   produce no TRUE and no UNKNOWN rows, so that leaf's kernel scan is
//!   skipped outright and an all-FALSE bitmap substituted. For a
//!   conjunction one pruned conjunct empties the whole shard;
//!   for general [`Candidate`] trees the boolean prune rules fall out of
//!   the exact substitution (an `OR` empties only when every branch is
//!   pruned; a `NOT` over a pruned leaf turns all-TRUE and is never
//!   pruned). Hash-sharding on a frequently-equality-tested column pins
//!   each `col = v` candidate to a single shard.
//! * **Determinism** — shards are always combined in ascending shard
//!   order, and shard locals map back to base-table row ids, so the
//!   ranking (scores, order, evidence) is identical to
//!   [`rank_predicates_with_cache`] on the unsharded table whenever the
//!   merged aggregates are exact (always for a single shard; see
//!   [`ShardedAggregateCache`] for the float caveat).
//!
//! [`rank_predicates_with_cache`]: crate::ranker::rank_predicates_with_cache

use crate::error::CoreError;
use crate::metric::ErrorMetric;
use crate::parallel::map_chunked;
use crate::ranker::{error_over_keys, RankedPredicate, RankerConfig};
use dbwipes_engine::{QueryResult, ShardedAggregateCache};
use dbwipes_storage::{
    Candidate, Condition, ConditionBitmapCache, DataType, RowId, RowSet, ShardedTable, Value,
};
use std::collections::BTreeSet;

/// Ranks candidate predicates shard-parallel over a pre-built
/// [`ShardedAggregateCache`]. Mirrors
/// [`rank_predicates_with_cache`](crate::ranker::rank_predicates_with_cache)
/// argument-for-argument; `examples` and the selected outputs' input rows
/// are given in *base-table* row ids and routed through the partition's
/// row-id mapping internally.
pub fn rank_predicates_sharded<P: Candidate>(
    cache: &ShardedAggregateCache,
    result: &QueryResult,
    selected: &[usize],
    examples: &[RowId],
    metric: &ErrorMetric,
    predicates: Vec<P>,
    config: &RankerConfig,
) -> Result<Vec<RankedPredicate<P>>, CoreError> {
    let sharded = cache.sharded().clone();
    let error_before = metric.evaluate_result(result, selected);
    let f_rows: Vec<RowId> = result.inputs_of_rows(selected);

    let ctx = ShardScoreContext {
        cache,
        sharded: &sharded,
        bitmaps: sharded.shards().iter().map(|t| ConditionBitmapCache::new(t)).collect(),
        error_before,
        selected_keys: selected.iter().filter_map(|&i| result.group_keys.get(i).cloned()).collect(),
        f_rowsets: split_to_sets(&sharded, &f_rows),
        example_rowsets: split_to_sets(&sharded, examples),
        f_set: f_rows.iter().copied().collect(),
        example_set: examples.iter().copied().collect(),
        metric,
        config,
    };

    // Same dedup discipline as the unsharded ranker: canonical
    // (commutativity-normalised) form, first occurrence wins.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let candidates: Vec<P> = predicates
        .into_iter()
        .filter(|p| !p.is_trivial() && seen.insert(p.canonical_key()))
        .collect();

    // Warm the per-shard condition bitmaps serially, skipping every
    // (shard, condition) pair the zone maps prune — on a hash partition
    // over an equality-heavy candidate pool this is where the shard
    // speedup comes from: each equality kernel scans one shard, not the
    // whole table.
    for candidate in &candidates {
        for condition in candidate.leaf_conditions() {
            for (s, shard) in sharded.shards().iter().enumerate() {
                if sharded.condition_may_match(s, &condition) {
                    let _ = ctx.bitmaps[s].condition(shard, &condition);
                }
            }
        }
    }

    let mut ranked = map_chunked(&candidates, |_, predicate| score_candidate(&ctx, predicate))
        .into_iter()
        .collect::<Result<Vec<RankedPredicate<P>>, CoreError>>()?;

    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.complexity.cmp(&b.complexity)));
    ranked.truncate(config.max_results);
    Ok(ranked)
}

/// Splits base-table rows through the partition mapping into one local
/// bitmap per shard (out-of-range rows drop, as in the unsharded ranker's
/// `in_range` filter).
fn split_to_sets(sharded: &ShardedTable, rows: &[RowId]) -> Vec<RowSet> {
    sharded
        .split_rows(rows)
        .iter()
        .zip(sharded.shards())
        .map(|(locals, t)| RowSet::from_rows(t.num_rows(), locals.iter()))
        .collect()
}

/// The per-ranking state shared by every candidate's scoring pass — the
/// sharded analogue of the unsharded ranker's `ScoreContext`, with every
/// row-level structure held per shard.
struct ShardScoreContext<'a> {
    cache: &'a ShardedAggregateCache,
    sharded: &'a ShardedTable,
    /// One condition-bitmap cache per shard (warmed before scoring).
    bitmaps: Vec<ConditionBitmapCache>,
    error_before: f64,
    selected_keys: Vec<Vec<Value>>,
    /// F split into per-shard bitmaps.
    f_rowsets: Vec<RowSet>,
    /// D′ split into per-shard bitmaps.
    example_rowsets: Vec<RowSet>,
    /// F in base-table row ids (scalar fallback path).
    f_set: BTreeSet<RowId>,
    /// D′ in base-table row ids (scalar fallback; also the recall
    /// denominator, counting every distinct example, in-table or not).
    example_set: BTreeSet<RowId>,
    metric: &'a ErrorMetric,
    config: &'a RankerConfig,
}

/// Per-candidate evidence gathered across shards.
struct ShardEvidence {
    matched_rows: usize,
    matched_in_f: usize,
    true_positives: usize,
    cleaned: QueryResult,
}

/// Scores one candidate: vectorized per-shard bitmaps when the whole
/// candidate compiles (expressibility is schema-only, so it is decided
/// once globally, never per shard), scalar per-row walk otherwise.
fn score_candidate<P: Candidate>(
    ctx: &ShardScoreContext<'_>,
    predicate: &P,
) -> Result<RankedPredicate<P>, CoreError> {
    let shard0 = ctx.sharded.shard(0);
    let vectorizable = predicate.vectorizable(shard0);
    let evidence =
        if vectorizable { score_bitmaps(ctx, predicate) } else { score_scalar(ctx, predicate)? };
    let ShardEvidence { matched_rows, matched_in_f, true_positives, cleaned } = evidence;

    let error_before = ctx.error_before;
    let error_after = error_over_keys(&cleaned, &ctx.selected_keys, ctx.metric);
    let improvement = if error_before > 0.0 {
        ((error_before - error_after) / error_before).clamp(-1.0, 1.0)
    } else {
        0.0
    };

    let tp = true_positives as f64;
    let precision = if matched_in_f == 0 { 0.0 } else { tp / matched_in_f as f64 };
    let recall = if ctx.example_set.is_empty() { 0.0 } else { tp / ctx.example_set.len() as f64 };
    let example_f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    let complexity = predicate.complexity();
    let score = ctx.config.weight_error * improvement + ctx.config.weight_accuracy * example_f1
        - ctx.config.weight_complexity * (complexity.saturating_sub(1)) as f64;

    Ok(RankedPredicate {
        predicate: predicate.clone(),
        score,
        error_before,
        error_after,
        improvement,
        example_f1,
        complexity,
        matched_rows,
    })
}

/// The vectorized path: per-shard bitmap combining and popcounts, with
/// zone-pruned leaves substituted by all-FALSE bitmaps instead of kernel
/// scans. The substitution is exact, so the boolean prune rules emerge
/// from the fold itself: a conjunction with any pruned conjunct empties
/// (and skips the shard's kernels entirely), an `OR` only empties when
/// *every* branch is pruned, and `NOT` of a pruned leaf correctly turns
/// all-TRUE — never pruned away.
fn score_bitmaps<P: Candidate>(ctx: &ShardScoreContext<'_>, predicate: &P) -> ShardEvidence {
    let mut matched_rows = 0usize;
    let mut matched_in_f = 0usize;
    let mut true_positives = 0usize;
    let mut excluded: Vec<RowSet> = Vec::with_capacity(ctx.sharded.num_shards());

    for (s, shard) in ctx.sharded.shards().iter().enumerate() {
        let live = |c: &Condition| ctx.sharded.condition_may_match(s, c);
        let tri = predicate
            .tri_eval_pruned(&ctx.bitmaps[s], shard, &live)
            .expect("globally vectorizable candidate compiles on every shard");
        let matched = tri.trues.and(ctx.bitmaps[s].visible());
        let mut exc = tri.passes_or_unknown();
        exc.and_assign(ctx.cache.shard_caches()[s].membership());
        let in_f = matched.and(&ctx.f_rowsets[s]);
        matched_rows += matched.count_ones();
        matched_in_f += in_f.count_ones();
        true_positives += in_f.intersection_count(&ctx.example_rowsets[s]);
        excluded.push(exc);
    }

    let cleaned = ctx.cache.result_excluding_keys_local_sets(&excluded, &ctx.selected_keys);
    ShardEvidence { matched_rows, matched_in_f, true_positives, cleaned }
}

/// The scalar fallback: one expression walk per visible row of each
/// shard, with base-table ids recovered through the partition mapping for
/// the F/D′ agreement counts. Row-at-a-time evaluation is partition-safe,
/// so walking shards in order visits exactly the base table's rows.
fn score_scalar<P: Candidate>(
    ctx: &ShardScoreContext<'_>,
    predicate: &P,
) -> Result<ShardEvidence, CoreError> {
    let p_expr = predicate.to_expr();
    let t = p_expr.validate(ctx.sharded.shard(0).schema())?;
    if !matches!(t, DataType::Bool | DataType::Null) {
        return Err(CoreError::invalid(format!("predicate must be boolean, found {t}")));
    }

    let mut matched_rows = 0usize;
    let mut matched_in_f = 0usize;
    let mut true_positives = 0usize;
    let mut excluded: Vec<RowSet> = Vec::with_capacity(ctx.sharded.num_shards());

    for (s, shard) in ctx.sharded.shards().iter().enumerate() {
        let shard_cache = &ctx.cache.shard_caches()[s];
        let mut exc = RowSet::empty(shard.num_rows());
        for rid in shard.visible_row_ids() {
            match p_expr.eval(shard, rid)? {
                Value::Bool(true) => {
                    matched_rows += 1;
                    let global = ctx.sharded.global_of(s, rid);
                    if ctx.f_set.contains(&global) {
                        matched_in_f += 1;
                        if ctx.example_set.contains(&global) {
                            true_positives += 1;
                        }
                    }
                    if shard_cache.contains(rid) {
                        exc.insert(rid.index());
                    }
                }
                Value::Bool(false) => {}
                // NULL: dropped by the `AND NOT predicate` rewrite.
                _ => {
                    if shard_cache.contains(rid) {
                        exc.insert(rid.index());
                    }
                }
            }
        }
        excluded.push(exc);
    }

    let cleaned = ctx.cache.result_excluding_keys_local_sets(&excluded, &ctx.selected_keys);
    Ok(ShardEvidence { matched_rows, matched_in_f, true_positives, cleaned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranker::rank_predicates_with_cache;
    use dbwipes_engine::{execute_sql, GroupedAggregateCache};
    use dbwipes_storage::{
        Catalog, Condition, ConjunctivePredicate, DataType, PredicateTree, Schema, Table,
    };
    use std::sync::Arc;

    /// Window 1 polluted by sensor 7 (dyadic temps → exact shard merges).
    fn setup() -> (Catalog, Vec<RowId>) {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("window", DataType::Int),
                ("sensorid", DataType::Int),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        let mut broken = Vec::new();
        for i in 0..240i64 {
            let window = i % 2;
            let sensor = i % 12;
            let is_broken = sensor == 7 && window == 1;
            let temp = if is_broken { 120.0 } else { 20.0 + (i % 5) as f64 * 0.25 };
            let rid = t
                .push_row(vec![Value::Int(window), Value::Int(sensor), Value::Float(temp)])
                .unwrap();
            if is_broken {
                broken.push(rid);
            }
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        (c, broken)
    }

    fn candidate_pool() -> Vec<ConjunctivePredicate> {
        let mut pool: Vec<ConjunctivePredicate> = (0..12)
            .map(|s| ConjunctivePredicate::new(vec![Condition::equals("sensorid", s)]))
            .collect();
        pool.push(ConjunctivePredicate::new(vec![Condition::above("temp", 100.0)]));
        pool.push(ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 7),
            Condition::above("temp", 100.0),
        ]));
        pool.push(ConjunctivePredicate::new(vec![Condition::between("temp", 20.0, 21.0)]));
        pool
    }

    #[test]
    fn sharded_ranking_matches_unsharded() {
        let (c, broken) = setup();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let config = RankerConfig { max_results: 20, ..Default::default() };

        let flat_cache = GroupedAggregateCache::build(table, &r.statement).unwrap();
        let baseline = rank_predicates_with_cache(
            &flat_cache,
            &r,
            &[1],
            &broken,
            &metric,
            candidate_pool(),
            &config,
        )
        .unwrap();

        for shards in [1usize, 4, 7] {
            let st = Arc::new(ShardedTable::hash(table, "sensorid", shards).unwrap());
            let cache = ShardedAggregateCache::build(st, &r.statement).unwrap();
            let ranked = rank_predicates_sharded(
                &cache,
                &r,
                &[1],
                &broken,
                &metric,
                candidate_pool(),
                &config,
            )
            .unwrap();
            assert_eq!(ranked.len(), baseline.len(), "{shards} shards");
            for (a, b) in ranked.iter().zip(&baseline) {
                assert_eq!(a.predicate, b.predicate, "{shards} shards");
                assert_eq!(a.score, b.score, "{shards} shards: {}", a.predicate);
                assert_eq!(a.error_after, b.error_after, "{shards} shards");
                assert_eq!(a.matched_rows, b.matched_rows, "{shards} shards");
                assert_eq!(a.example_f1, b.example_f1, "{shards} shards");
            }
        }
    }

    #[test]
    fn range_partition_ranking_matches_unsharded() {
        let (c, broken) = setup();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let config = RankerConfig::default();

        let flat_cache = GroupedAggregateCache::build(table, &r.statement).unwrap();
        let baseline = rank_predicates_with_cache(
            &flat_cache,
            &r,
            &[1],
            &broken,
            &metric,
            candidate_pool(),
            &config,
        )
        .unwrap();

        let st = Arc::new(ShardedTable::range(table, "temp", 3).unwrap());
        let cache = ShardedAggregateCache::build(st, &r.statement).unwrap();
        let ranked =
            rank_predicates_sharded(&cache, &r, &[1], &broken, &metric, candidate_pool(), &config)
                .unwrap();
        assert_eq!(ranked.len(), baseline.len());
        for (a, b) in ranked.iter().zip(&baseline) {
            assert_eq!(a.predicate, b.predicate);
            assert_eq!(a.score, b.score, "{}", a.predicate);
        }
        // Range sharding on temp prunes `temp > 100` down to a single
        // shard; sanity-check the pruning really fires.
        let hot = Condition::above("temp", 100.0);
        let may: Vec<bool> = (0..cache.sharded().num_shards())
            .map(|s| cache.sharded().condition_may_match(s, &hot))
            .collect();
        assert!(may.iter().filter(|&&m| m).count() < cache.sharded().num_shards());
    }

    /// OR-of-conjunction and negated candidates: the disjunctive pool the
    /// boolean-algebra layer exists for. Sharded scoring (with per-leaf
    /// zone pruning) must agree exactly with the unsharded bitmap path on
    /// hash *and* range partitions.
    #[test]
    fn sharded_tree_candidates_match_unsharded() {
        let (c, broken) = setup();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let config = RankerConfig { max_results: 30, ..Default::default() };

        let eq = |s: i64| ConjunctivePredicate::new(vec![Condition::equals("sensorid", s)]);
        let hot = ConjunctivePredicate::new(vec![Condition::above("temp", 100.0)]);
        let pool = || -> Vec<PredicateTree> {
            let mut pool: Vec<PredicateTree> =
                (0..12).map(|s| PredicateTree::any_of(vec![eq(s), hot.clone()])).collect();
            pool.push(PredicateTree::negation(eq(7)));
            pool.push(PredicateTree::negation(hot.clone()));
            pool.push(PredicateTree::Not(Box::new(PredicateTree::any_of(vec![eq(7), eq(3)]))));
            pool.push(PredicateTree::And(vec![
                PredicateTree::any_of(vec![eq(7), eq(3)]),
                PredicateTree::negation(ConjunctivePredicate::new(vec![Condition::between(
                    "temp", 20.0, 21.0,
                )])),
            ]));
            // An all-branches-prunable OR (sensors that do not exist).
            pool.push(PredicateTree::any_of(vec![eq(777), eq(888)]));
            pool
        };

        let flat_cache = GroupedAggregateCache::build(table, &r.statement).unwrap();
        let baseline =
            rank_predicates_with_cache(&flat_cache, &r, &[1], &broken, &metric, pool(), &config)
                .unwrap();
        assert!(!baseline.is_empty());
        // The negated pollution predicate must not win (removing everything
        // *but* the broken sensor leaves the inflated readings in place).
        assert!(baseline[0].predicate.to_string().contains("OR"), "{}", baseline[0].predicate);

        for (strategy, shards) in [("hash", 4usize), ("hash", 7), ("range", 3)] {
            let st = Arc::new(match strategy {
                "hash" => ShardedTable::hash(table, "sensorid", shards).unwrap(),
                _ => ShardedTable::range(table, "temp", shards).unwrap(),
            });
            let cache = ShardedAggregateCache::build(st, &r.statement).unwrap();
            let ranked =
                rank_predicates_sharded(&cache, &r, &[1], &broken, &metric, pool(), &config)
                    .unwrap();
            assert_eq!(ranked.len(), baseline.len(), "{strategy}/{shards}");
            for (a, b) in ranked.iter().zip(&baseline) {
                assert_eq!(a.predicate, b.predicate, "{strategy}/{shards}");
                assert_eq!(a.score, b.score, "{strategy}/{shards}: {}", a.predicate);
                assert_eq!(a.error_after, b.error_after, "{strategy}/{shards}");
                assert_eq!(a.matched_rows, b.matched_rows, "{strategy}/{shards}");
                assert_eq!(a.example_f1, b.example_f1, "{strategy}/{shards}");
            }
        }
    }

    /// On a hash partition, a `NOT (sensorid = k)` candidate must stay
    /// conservative: the shard holding sensor k is the only one where the
    /// equality can match, but its *negation* matches rows on every shard.
    #[test]
    fn negated_equality_is_never_pruned_to_empty() {
        let (c, broken) = setup();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let st = Arc::new(ShardedTable::hash(table, "sensorid", 4).unwrap());
        let cache = ShardedAggregateCache::build(st, &r.statement).unwrap();
        let eq7 = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 7)]);
        // The positive equality prunes to one shard...
        let live_shards = (0..4)
            .filter(|&s| cache.sharded().condition_may_match(s, &Condition::equals("sensorid", 7)))
            .count();
        assert_eq!(live_shards, 1);
        // ...while its negation still matches all 220 non-sensor-7 rows.
        let ranked = rank_predicates_sharded(
            &cache,
            &r,
            &[1],
            &broken,
            &metric,
            vec![PredicateTree::negation(eq7)],
            &RankerConfig::default(),
        )
        .unwrap();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].matched_rows, 220);
    }

    #[test]
    fn invalid_scalar_predicate_errors_like_unsharded() {
        let (c, broken) = setup();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 25.0);
        let st = Arc::new(ShardedTable::hash(table, "sensorid", 3).unwrap());
        let cache = ShardedAggregateCache::build(st, &r.statement).unwrap();
        // `contains` on a missing column fails validation in the scalar path.
        let bad = ConjunctivePredicate::new(vec![Condition::contains("no_such_column", "x")]);
        let err = rank_predicates_sharded(
            &cache,
            &r,
            &[1],
            &broken,
            &metric,
            vec![bad],
            &RankerConfig::default(),
        );
        assert!(err.is_err());
    }
}

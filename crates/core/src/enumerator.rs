//! The Dataset Enumerator: clean D′ and extend it into candidate D* sets.
//!
//! "The Dataset Enumerator cleans D′ by identifying a self consistent
//! subset. We are currently experimenting with clustering (e.g., K-means)
//! and classification based techniques ... We then extend the cleaned D′
//! using subgroup discovery algorithms to find groups of inputs that highly
//! influence ε. ... The output of the component is a set of n candidate
//! datasets Dᶜ₁, ..., Dᶜₙ" (paper §2.2.2).

use crate::influence::InfluenceReport;
use dbwipes_learn::{
    discover_subgroups, kmeans, to_points, FeatureSpace, NaiveBayes, SubgroupConfig,
};
use dbwipes_storage::{RowId, RowSet, Table};
use std::collections::BTreeSet;

/// How the user's example tuples D′ are cleaned before extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CleaningStrategy {
    /// Keep D′ as-is.
    None,
    /// Cluster D′ with k-means (k = 2) and keep the dominant cluster —
    /// accidental selections fall into the minority cluster.
    #[default]
    KMeans,
    /// Train a naive Bayes classifier on D′ (positive) vs. the rest of F
    /// (negative) and drop D′ members the classifier rejects.
    NaiveBayes,
}

/// Configuration of the Dataset Enumerator.
#[derive(Debug, Clone)]
pub struct EnumeratorConfig {
    /// Cleaning strategy applied to D′.
    pub cleaning: CleaningStrategy,
    /// Whether to extend the cleaned D′ with subgroup discovery over the
    /// high-influence portion of F.
    pub extend_with_subgroups: bool,
    /// Fraction (0..1) of F, by influence rank, treated as high-influence
    /// positives when mining subgroups (0.1 = top 10%).
    pub influence_fraction: f64,
    /// Subgroup-discovery parameters.
    pub subgroup: SubgroupConfig,
    /// Maximum number of candidate datasets returned.
    pub max_candidates: usize,
    /// RNG seed for k-means.
    pub seed: u64,
}

impl Default for EnumeratorConfig {
    fn default() -> Self {
        EnumeratorConfig {
            cleaning: CleaningStrategy::KMeans,
            extend_with_subgroups: true,
            influence_fraction: 0.1,
            subgroup: SubgroupConfig::default(),
            max_candidates: 8,
            seed: 7,
        }
    }
}

/// Where a candidate dataset came from (recorded so the ablation experiment
/// E8 and the dashboard can attribute predicates to pipeline stages).
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateSource {
    /// The user's example tuples after the cleaning stage ran (which may
    /// have kept all of them, or skipped clustering for a tiny D′).
    CleanedExamples,
    /// The raw example tuples (only emitted when cleaning is disabled).
    RawExamples,
    /// A subgroup discovered over the high-influence portion of F; the
    /// string is the subgroup's human-readable description.
    Subgroup(String),
    /// The top of the Preprocessor's influence ranking — the fallback used
    /// when cleaning and subgroup extension produced no candidates (e.g. no
    /// examples were supplied, or extension found no subgroup), so
    /// downstream stages always receive a candidate.
    HighInfluence,
}

/// A candidate approximation of D* (the erroneous inputs).
#[derive(Debug, Clone)]
pub struct CandidateDataset {
    /// The candidate's rows (a subset of F).
    pub rows: Vec<RowId>,
    /// How the candidate was produced.
    pub source: CandidateSource,
}

impl CandidateDataset {
    /// Number of rows in the candidate.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the candidate has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Cleans D′ and extends it into candidate datasets.
///
/// `examples` is D′, `influence` is the Preprocessor's report over F, and
/// `space` is the feature space over the queried table's attributes.
/// Candidates are deduplicated; the cleaned D′ always appears first.
pub fn enumerate_candidates(
    table: &Table,
    space: &FeatureSpace,
    examples: &[RowId],
    influence: &InfluenceReport,
    config: &EnumeratorConfig,
) -> Vec<CandidateDataset> {
    let mut candidates: Vec<CandidateDataset> = Vec::new();
    let f_rows: Vec<RowId> = influence.inputs();

    // 1. Clean D′.
    let cleaned = clean_examples(table, space, examples, &f_rows, config);
    let cleaned_set: BTreeSet<RowId> = cleaned.iter().copied().collect();
    if !cleaned.is_empty() {
        let source = if config.cleaning == CleaningStrategy::None {
            CandidateSource::RawExamples
        } else {
            CandidateSource::CleanedExamples
        };
        candidates.push(CandidateDataset { rows: cleaned.clone(), source });
    }

    // 2. Extend with subgroup discovery over F, where the positive class is
    //    "in cleaned D′ or among the most influential tuples". Membership
    //    tests run against RowSet bitmaps: labelling all of F is then one
    //    O(1) probe per row instead of an ordered-set lookup.
    if config.extend_with_subgroups && !f_rows.is_empty() {
        let num_rows = table.num_rows();
        let top_n = ((f_rows.len() as f64) * config.influence_fraction).ceil() as usize;
        let mut positive_set =
            RowSet::from_rows(num_rows, cleaned.iter().filter(|r| r.index() < num_rows));
        for t in
            influence.influences.iter().filter(|t| t.influence > 0.0).take(top_n.max(cleaned.len()))
        {
            if t.row.index() < num_rows {
                positive_set.insert(t.row.index());
            }
        }
        let labels: Vec<bool> = f_rows.iter().map(|r| positive_set.contains_row(*r)).collect();
        if labels.iter().any(|&l| l) && labels.iter().any(|&l| !l) {
            let dataset = space.extract(table, &f_rows);
            let subgroups = discover_subgroups(&dataset, &labels, &config.subgroup);
            for sg in subgroups {
                let covered: BTreeSet<RowId> =
                    sg.covered_indices(&dataset).into_iter().map(|i| f_rows[i]).collect();
                let rows: Vec<RowId> = covered.union(&cleaned_set).copied().collect();
                let description = sg.to_predicate(space).to_string();
                candidates.push(CandidateDataset {
                    rows,
                    source: CandidateSource::Subgroup(description),
                });
            }
        }
    }

    // 3. Fallback: with no (usable) examples and no subgroup extension the
    //    list can still be empty; approximate D* straight from the
    //    Preprocessor's influence ranking so the Predicate Enumerator always
    //    has something to train against.
    if candidates.is_empty() && !f_rows.is_empty() {
        let top_n = (((f_rows.len() as f64) * config.influence_fraction).ceil() as usize).max(1);
        let rows: Vec<RowId> = influence
            .influences
            .iter()
            .filter(|t| t.influence > 0.0)
            .take(top_n)
            .map(|t| t.row)
            .collect();
        if !rows.is_empty() {
            candidates.push(CandidateDataset { rows, source: CandidateSource::HighInfluence });
        }
    }

    // Deduplicate by row set, preserving order.
    let mut seen: Vec<BTreeSet<RowId>> = Vec::new();
    candidates.retain(|c| {
        let set: BTreeSet<RowId> = c.rows.iter().copied().collect();
        if seen.contains(&set) {
            false
        } else {
            seen.push(set);
            true
        }
    });
    candidates.truncate(config.max_candidates);
    candidates
}

/// Applies the configured cleaning strategy to D′.
fn clean_examples(
    table: &Table,
    space: &FeatureSpace,
    examples: &[RowId],
    f_rows: &[RowId],
    config: &EnumeratorConfig,
) -> Vec<RowId> {
    if examples.len() < 4 || config.cleaning == CleaningStrategy::None || space.is_empty() {
        return examples.to_vec();
    }
    match config.cleaning {
        CleaningStrategy::None => examples.to_vec(),
        CleaningStrategy::KMeans => {
            let dataset = space.extract(table, examples);
            let points = to_points(&dataset);
            let result = kmeans(&points, 2, 50, config.seed);
            if result.centroids.len() < 2 {
                return examples.to_vec();
            }
            let dominant = result.dominant_cluster();
            let members = result.members_of(dominant);
            // Never throw away more than half of the user's selection: if the
            // clusters are balanced the selection is probably fine as-is.
            if members.len() * 2 < examples.len() {
                return examples.to_vec();
            }
            members.into_iter().map(|i| examples[i]).collect()
        }
        CleaningStrategy::NaiveBayes => {
            let example_set: BTreeSet<RowId> = examples.iter().copied().collect();
            let negatives: Vec<RowId> =
                f_rows.iter().filter(|r| !example_set.contains(r)).copied().collect();
            if negatives.is_empty() {
                return examples.to_vec();
            }
            let mut all_rows: Vec<RowId> = examples.to_vec();
            all_rows.extend(negatives.iter().copied());
            let labels: Vec<bool> = all_rows.iter().map(|r| example_set.contains(r)).collect();
            let dataset = space.extract(table, &all_rows);
            let Some(nb) = NaiveBayes::train(&dataset, &labels) else {
                return examples.to_vec();
            };
            let kept: Vec<RowId> = examples
                .iter()
                .enumerate()
                .filter(|(i, _)| nb.predict(&dataset.instances[*i]))
                .map(|(_, r)| *r)
                .collect();
            if kept.len() * 2 < examples.len() {
                examples.to_vec()
            } else {
                kept
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::influence::rank_influence;
    use crate::metric::ErrorMetric;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, DataType, Schema, Value};

    /// 200 readings in one group; sensor 15 (10% of rows) reports ~120F,
    /// everything else ~20F.
    fn setup() -> (Catalog, Vec<RowId>, Vec<RowId>) {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("window", DataType::Int),
                ("sensorid", DataType::Int),
                ("voltage", DataType::Float),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        let mut broken = Vec::new();
        for i in 0..200i64 {
            let sensor = i % 20;
            let is_broken = sensor == 15;
            let temp = if is_broken { 118.0 + (i % 5) as f64 } else { 19.0 + (i % 7) as f64 };
            let voltage = if is_broken { 1.9 } else { 2.6 };
            let rid = t
                .push_row(vec![
                    Value::Int(0),
                    Value::Int(sensor),
                    Value::Float(voltage),
                    Value::Float(temp),
                ])
                .unwrap();
            if is_broken {
                broken.push(rid);
            }
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        let all: Vec<RowId> = c.table("readings").unwrap().visible_row_ids().collect();
        (c, broken, all)
    }

    fn influence_report(c: &Catalog) -> InfluenceReport {
        let r = execute_sql(c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        rank_influence(
            c.table("readings").unwrap(),
            &r,
            &[0],
            &ErrorMetric::too_high("avg_temp", 25.0),
        )
        .unwrap()
    }

    fn space(c: &Catalog, rows: &[RowId]) -> FeatureSpace {
        FeatureSpace::build_excluding(c.table("readings").unwrap(), &["temp".into()], rows)
    }

    #[test]
    fn produces_candidates_containing_the_broken_sensor() {
        let (c, broken, all) = setup();
        let report = influence_report(&c);
        let space = space(&c, &all);
        // D' = a handful of the broken readings.
        let examples: Vec<RowId> = broken.iter().copied().take(5).collect();
        let candidates = enumerate_candidates(
            c.table("readings").unwrap(),
            &space,
            &examples,
            &report,
            &EnumeratorConfig::default(),
        );
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= EnumeratorConfig::default().max_candidates);
        // The first candidate is the (cleaned) example set.
        assert_eq!(candidates[0].source, CandidateSource::CleanedExamples);
        assert!(candidates[0].len() >= 3);
        // At least one subgroup-extended candidate covers most broken rows.
        let best_coverage = candidates
            .iter()
            .map(|cand| broken.iter().filter(|b| cand.rows.contains(b)).count())
            .max()
            .unwrap();
        assert!(
            best_coverage >= broken.len() / 2,
            "best candidate covers only {best_coverage}/{} broken rows",
            broken.len()
        );
        // Subgroup candidates carry a description.
        assert!(candidates
            .iter()
            .any(|cand| matches!(&cand.source, CandidateSource::Subgroup(d) if !d.is_empty())));
    }

    #[test]
    fn kmeans_cleaning_drops_accidental_selections() {
        let (c, broken, all) = setup();
        let report = influence_report(&c);
        let space = space(&c, &all);
        // D' = 8 broken readings plus 2 accidental normal ones.
        let mut examples: Vec<RowId> = broken.iter().copied().take(8).collect();
        examples.push(RowId(0));
        examples.push(RowId(1));
        let config = EnumeratorConfig {
            extend_with_subgroups: false,
            cleaning: CleaningStrategy::KMeans,
            ..Default::default()
        };
        let candidates =
            enumerate_candidates(c.table("readings").unwrap(), &space, &examples, &report, &config);
        assert_eq!(candidates.len(), 1);
        let cleaned = &candidates[0].rows;
        assert!(cleaned.len() < examples.len(), "cleaning removed nothing");
        assert!(!cleaned.contains(&RowId(0)));
        assert!(!cleaned.contains(&RowId(1)));
        assert!(cleaned.iter().all(|r| broken.contains(r)));
    }

    #[test]
    fn naive_bayes_cleaning_also_drops_outliers() {
        let (c, broken, all) = setup();
        let report = influence_report(&c);
        let space = space(&c, &all);
        let mut examples: Vec<RowId> = broken.iter().copied().take(8).collect();
        examples.push(RowId(0));
        let config = EnumeratorConfig {
            extend_with_subgroups: false,
            cleaning: CleaningStrategy::NaiveBayes,
            ..Default::default()
        };
        let candidates =
            enumerate_candidates(c.table("readings").unwrap(), &space, &examples, &report, &config);
        assert_eq!(candidates.len(), 1);
        assert!(!candidates[0].rows.contains(&RowId(0)));
    }

    #[test]
    fn no_cleaning_keeps_examples_verbatim() {
        let (c, broken, all) = setup();
        let report = influence_report(&c);
        let space = space(&c, &all);
        let mut examples: Vec<RowId> = broken.iter().copied().take(6).collect();
        examples.push(RowId(0));
        let config = EnumeratorConfig {
            cleaning: CleaningStrategy::None,
            extend_with_subgroups: false,
            ..Default::default()
        };
        let candidates =
            enumerate_candidates(c.table("readings").unwrap(), &space, &examples, &report, &config);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].rows, examples);
        assert_eq!(candidates[0].source, CandidateSource::RawExamples);
    }

    #[test]
    fn small_example_sets_are_never_cleaned_away() {
        let (c, broken, all) = setup();
        let report = influence_report(&c);
        let space = space(&c, &all);
        let examples: Vec<RowId> = broken.iter().copied().take(2).collect();
        let candidates = enumerate_candidates(
            c.table("readings").unwrap(),
            &space,
            &examples,
            &report,
            &EnumeratorConfig::default(),
        );
        assert!(candidates[0].rows.len() >= 2);
        assert!(!candidates[0].is_empty());
    }

    #[test]
    fn candidates_are_deduplicated_and_capped() {
        let (c, broken, all) = setup();
        let report = influence_report(&c);
        let space = space(&c, &all);
        let examples: Vec<RowId> = broken.iter().copied().take(5).collect();
        let config = EnumeratorConfig { max_candidates: 2, ..Default::default() };
        let candidates =
            enumerate_candidates(c.table("readings").unwrap(), &space, &examples, &report, &config);
        assert!(candidates.len() <= 2);
        // Row sets are pairwise distinct.
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                assert_ne!(candidates[i].rows, candidates[j].rows);
            }
        }
    }
}

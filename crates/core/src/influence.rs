//! The Preprocessor: leave-one-out influence ranking.
//!
//! "First, the Preprocessor computes F, the set of input tuples that
//! generated S ... It then uses leave-one-out analysis to rank each tuple
//! in F by how much it influences ε" (paper §2.2.2). The influence of a
//! tuple is the decrease in ε obtained by recomputing its group's aggregate
//! without it; sum-like aggregates use O(1) state removal, min/max fall
//! back to a rescan of the group.

use crate::error::CoreError;
use crate::metric::ErrorMetric;
use dbwipes_engine::{AggregateArg, AggregateCall, AggregateState, QueryResult, SelectExpr};
use dbwipes_storage::{RowId, Table};

/// Influence of one input tuple on the error metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleInfluence {
    /// The input row.
    pub row: RowId,
    /// Index (into the query result) of the output group the row fed.
    pub group: usize,
    /// `ε(S) − ε(S with this row removed)`: positive means removing the row
    /// reduces the error.
    pub influence: f64,
}

/// The Preprocessor's output.
#[derive(Debug, Clone)]
pub struct InfluenceReport {
    /// ε over the selected outputs before any tuple is removed.
    pub base_error: f64,
    /// Influence of every tuple in F, sorted by decreasing influence.
    pub influences: Vec<TupleInfluence>,
}

impl InfluenceReport {
    /// The input rows of the selected outputs (the paper's F), in influence
    /// order.
    pub fn inputs(&self) -> Vec<RowId> {
        self.influences.iter().map(|t| t.row).collect()
    }

    /// The `k` most influential rows.
    pub fn top_k(&self, k: usize) -> Vec<RowId> {
        self.influences.iter().take(k).map(|t| t.row).collect()
    }

    /// The influence of a specific row, if it is part of F.
    pub fn influence_of(&self, row: RowId) -> Option<f64> {
        self.influences.iter().find(|t| t.row == row).map(|t| t.influence)
    }
}

/// Locates the aggregate call behind the metric's output column.
///
/// Falls back to the only aggregate in the query when the column name does
/// not match any output (so `ErrorMetric::too_high("avg_temp", ...)` works
/// even if the user aliased the column).
pub fn metric_aggregate<'a>(
    result: &'a QueryResult,
    metric: &ErrorMetric,
) -> Result<(usize, &'a AggregateCall), CoreError> {
    let items = &result.statement.items;
    for (i, item) in items.iter().enumerate() {
        if let SelectExpr::Aggregate(call) = &item.expr {
            if item.output_name().eq_ignore_ascii_case(&metric.column)
                || result
                    .schema
                    .field_at(i)
                    .map(|f| f.name.eq_ignore_ascii_case(&metric.column))
                    .unwrap_or(false)
            {
                return Ok((i, call));
            }
        }
    }
    let aggs: Vec<(usize, &AggregateCall)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, item)| match &item.expr {
            SelectExpr::Aggregate(call) => Some((i, call)),
            _ => None,
        })
        .collect();
    match aggs.as_slice() {
        [only] => Ok(*only),
        [] => Err(CoreError::invalid("the query has no aggregate to attach the error metric to")),
        _ => Err(CoreError::invalid(format!(
            "error metric column '{}' does not name an aggregate output of the query",
            metric.column
        ))),
    }
}

/// Extracts the aggregate-argument value of a single input row (`None` for
/// NULL), as the aggregate saw it during execution.
pub fn aggregate_arg_value(
    table: &Table,
    call: &AggregateCall,
    row: RowId,
) -> Result<Option<f64>, CoreError> {
    Ok(match &call.arg {
        AggregateArg::Star => Some(1.0),
        AggregateArg::Expr(e) => e.eval(table, row).map_err(CoreError::from)?.as_f64(),
    })
}

/// Ranks every input tuple of the selected outputs by leave-one-out
/// influence on ε.
pub fn rank_influence(
    table: &Table,
    result: &QueryResult,
    selected: &[usize],
    metric: &ErrorMetric,
) -> Result<InfluenceReport, CoreError> {
    if selected.is_empty() {
        return Err(CoreError::invalid("no suspicious outputs (S) were selected"));
    }
    for &s in selected {
        if s >= result.len() {
            return Err(CoreError::invalid(format!(
                "selected output {s} is out of range (result has {} rows)",
                result.len()
            )));
        }
    }
    let (_, call) = metric_aggregate(result, metric)?;

    // Current aggregate value of each selected group, plus the per-tuple
    // argument values needed for leave-one-out recomputation.
    let mut current: Vec<Option<f64>> = Vec::with_capacity(selected.len());
    let mut group_rows: Vec<&[RowId]> = Vec::with_capacity(selected.len());
    let mut group_values: Vec<Vec<Option<f64>>> = Vec::with_capacity(selected.len());
    let mut group_states: Vec<AggregateState> = Vec::with_capacity(selected.len());
    for &s in selected {
        let rows = result.inputs_of(s);
        let values: Vec<Option<f64>> =
            rows.iter().map(|&r| aggregate_arg_value(table, call, r)).collect::<Result<_, _>>()?;
        let mut state = AggregateState::new(call.func);
        for v in &values {
            state.add(*v);
        }
        current.push(state.finish().as_f64());
        group_rows.push(rows);
        group_values.push(values);
        group_states.push(state);
    }

    let base_error = metric.evaluate(&current);

    let mut influences = Vec::new();
    for (gi, &s) in selected.iter().enumerate() {
        for (ti, &row) in group_rows[gi].iter().enumerate() {
            let value = group_values[gi][ti];
            // Aggregate value of the group without this tuple.
            let new_value = if call.func.supports_removal() {
                let mut st = group_states[gi].clone();
                st.remove(value);
                st.finish().as_f64()
            } else {
                let mut st = AggregateState::new(call.func);
                for (tj, v) in group_values[gi].iter().enumerate() {
                    if tj != ti {
                        st.add(*v);
                    }
                }
                st.finish().as_f64()
            };
            let mut hypothetical = current.clone();
            hypothetical[gi] = new_value;
            let new_error = metric.evaluate(&hypothetical);
            influences.push(TupleInfluence { row, group: s, influence: base_error - new_error });
        }
    }

    influences.sort_by(|a, b| b.influence.total_cmp(&a.influence).then(a.row.cmp(&b.row)));
    Ok(InfluenceReport { base_error, influences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, DataType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("hour", DataType::Int),
                ("sensorid", DataType::Int),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        // hour 0: normal. hour 1: one broken reading of 120.
        let rows = [(0, 1, 20.0), (0, 2, 22.0), (1, 1, 21.0), (1, 3, 120.0), (1, 2, 24.0)];
        for (h, s, temp) in rows {
            t.push_row(vec![Value::Int(h), Value::Int(s), Value::Float(temp)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        c
    }

    #[test]
    fn broken_reading_has_the_highest_influence() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        // Group 1 (hour=1) has avg 55; select it as suspicious.
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[1], &metric).unwrap();
        assert!((report.base_error - 25.0).abs() < 1e-9);
        // The 120-degree reading is row 3 and must rank first.
        assert_eq!(report.influences[0].row, RowId(3));
        assert_eq!(report.influences[0].group, 1);
        assert!(report.influences[0].influence > 0.0);
        // Removing the 120 reading brings avg(21,24)=22.5 under the threshold:
        // influence equals the full base error.
        assert!((report.influences[0].influence - 25.0).abs() < 1e-9);
        // Removing a small reading makes things worse (negative influence).
        let low = report.influence_of(RowId(2)).unwrap();
        assert!(low < 0.0);
        assert_eq!(report.inputs().len(), 3);
        assert_eq!(report.top_k(1), vec![RowId(3)]);
        assert!(report.influence_of(RowId(0)).is_none());
    }

    #[test]
    fn works_for_sum_and_count_and_minmax() {
        let c = catalog();
        let table = c.table("readings").unwrap();
        for (sql, column) in [
            ("SELECT hour, sum(temp) AS v FROM readings GROUP BY hour", "v"),
            ("SELECT hour, count(*) AS v FROM readings GROUP BY hour", "v"),
            ("SELECT hour, max(temp) AS v FROM readings GROUP BY hour", "v"),
            ("SELECT hour, min(temp) AS v FROM readings GROUP BY hour", "v"),
        ] {
            let r = execute_sql(&c, sql).unwrap();
            let metric = ErrorMetric::too_high(column, 0.0);
            let report = rank_influence(table, &r, &[1], &metric).unwrap();
            assert_eq!(report.influences.len(), 3, "{sql}");
            assert!(report.base_error > 0.0, "{sql}");
            // For max(), removing the 120 reading must have the largest influence.
            if sql.contains("max") {
                assert_eq!(report.influences[0].row, RowId(3));
            }
        }
    }

    #[test]
    fn metric_column_fallback_to_single_aggregate() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) AS mean_t FROM readings GROUP BY hour")
            .unwrap();
        // Column name does not match the alias, but there is only one
        // aggregate, so it is used.
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[1], &metric).unwrap();
        assert!(report.base_error > 0.0);

        // With two aggregates an unknown column is ambiguous.
        let r2 = execute_sql(&c, "SELECT hour, avg(temp), sum(temp) FROM readings GROUP BY hour")
            .unwrap();
        let err = rank_influence(
            c.table("readings").unwrap(),
            &r2,
            &[1],
            &ErrorMetric::too_high("nope", 0.0),
        );
        assert!(err.is_err());
        // Naming one of them works.
        let ok = rank_influence(
            c.table("readings").unwrap(),
            &r2,
            &[1],
            &ErrorMetric::too_high("sum_temp", 0.0),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let table = c.table("readings").unwrap();
        assert!(rank_influence(table, &r, &[], &metric).is_err());
        assert!(rank_influence(table, &r, &[9], &metric).is_err());
        // A query with no aggregate at all cannot host a metric.
        let r = execute_sql(&c, "SELECT hour FROM readings GROUP BY hour").unwrap();
        assert!(rank_influence(table, &r, &[0], &metric).is_err());
    }

    #[test]
    fn multiple_selected_groups_combine() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 10.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[0, 1], &metric).unwrap();
        // base = (21-10) + (55-10) = 56
        assert!((report.base_error - 56.0).abs() < 1e-9);
        assert_eq!(report.influences.len(), 5);
        assert_eq!(report.influences[0].row, RowId(3));
    }
}

//! The Preprocessor: leave-one-out influence ranking.
//!
//! "First, the Preprocessor computes F, the set of input tuples that
//! generated S ... It then uses leave-one-out analysis to rank each tuple
//! in F by how much it influences ε" (paper §2.2.2). The influence of a
//! tuple is the decrease in ε obtained by recomputing its group's aggregate
//! without it. The per-group aggregate states and argument values come from
//! the engine's [`GroupedAggregateCache`] (one execution shared with the
//! Predicate Ranker); each tuple's leave-one-out value is then one
//! [`AggregateState::remove`] on a copy of its group's state for sum-like
//! aggregates, with min/max falling back to a rescan of the group. The
//! per-tuple loop is embarrassingly parallel and runs across scoped
//! threads.

use crate::error::CoreError;
use crate::metric::ErrorMetric;
use crate::parallel::map_chunked;
use dbwipes_engine::{
    AggregateArg, AggregateCall, AggregateState, GroupedAggregateCache, QueryResult, SelectExpr,
};
use dbwipes_storage::{RowId, Table};

/// Influence of one input tuple on the error metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TupleInfluence {
    /// The input row.
    pub row: RowId,
    /// Index (into the query result) of the output group the row fed.
    pub group: usize,
    /// `ε(S) − ε(S with this row removed)`: positive means removing the row
    /// reduces the error.
    pub influence: f64,
}

/// The Preprocessor's output.
#[derive(Debug, Clone)]
pub struct InfluenceReport {
    /// ε over the selected outputs before any tuple is removed.
    pub base_error: f64,
    /// Influence of every tuple in F, sorted by decreasing influence.
    pub influences: Vec<TupleInfluence>,
}

impl InfluenceReport {
    /// The input rows of the selected outputs (the paper's F), in influence
    /// order.
    pub fn inputs(&self) -> Vec<RowId> {
        self.influences.iter().map(|t| t.row).collect()
    }

    /// The `k` most influential rows.
    pub fn top_k(&self, k: usize) -> Vec<RowId> {
        self.influences.iter().take(k).map(|t| t.row).collect()
    }

    /// The influence of a specific row, if it is part of F.
    pub fn influence_of(&self, row: RowId) -> Option<f64> {
        self.influences.iter().find(|t| t.row == row).map(|t| t.influence)
    }
}

/// Locates the aggregate call behind the metric's output column.
///
/// Falls back to the only aggregate in the query when the column name does
/// not match any output (so `ErrorMetric::too_high("avg_temp", ...)` works
/// even if the user aliased the column).
pub fn metric_aggregate<'a>(
    result: &'a QueryResult,
    metric: &ErrorMetric,
) -> Result<(usize, &'a AggregateCall), CoreError> {
    let items = &result.statement.items;
    for (i, item) in items.iter().enumerate() {
        if let SelectExpr::Aggregate(call) = &item.expr {
            if item.output_name().eq_ignore_ascii_case(&metric.column)
                || result
                    .schema
                    .field_at(i)
                    .map(|f| f.name.eq_ignore_ascii_case(&metric.column))
                    .unwrap_or(false)
            {
                return Ok((i, call));
            }
        }
    }
    let aggs: Vec<(usize, &AggregateCall)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, item)| match &item.expr {
            SelectExpr::Aggregate(call) => Some((i, call)),
            _ => None,
        })
        .collect();
    match aggs.as_slice() {
        [only] => Ok(*only),
        [] => Err(CoreError::invalid("the query has no aggregate to attach the error metric to")),
        _ => Err(CoreError::invalid(format!(
            "error metric column '{}' does not name an aggregate output of the query",
            metric.column
        ))),
    }
}

/// Extracts the aggregate-argument value of a single input row (`None` for
/// NULL), as the aggregate saw it during execution.
pub fn aggregate_arg_value(
    table: &Table,
    call: &AggregateCall,
    row: RowId,
) -> Result<Option<f64>, CoreError> {
    Ok(match &call.arg {
        AggregateArg::Star => Some(1.0),
        AggregateArg::Expr(e) => e.eval(table, row).map_err(CoreError::from)?.as_f64(),
    })
}

/// Ranks every input tuple of the selected outputs by leave-one-out
/// influence on ε, building the incremental re-aggregation cache internally.
pub fn rank_influence(
    table: &Table,
    result: &QueryResult,
    selected: &[usize],
    metric: &ErrorMetric,
) -> Result<InfluenceReport, CoreError> {
    let cache = GroupedAggregateCache::build(table, &result.statement)?;
    rank_influence_with_cache(&cache, result, selected, metric)
}

/// [`rank_influence`] over a caller-provided cache (which carries the table
/// it was built from) — the explain pipeline builds one
/// [`GroupedAggregateCache`] and shares it between the Preprocessor and the
/// Ranker.
///
/// The cache is only trusted when its groups agree with the result's
/// lineage (same rows per selected group); when they differ — the table
/// changed since the result was computed, or the result was executed
/// without lineage capture — the Preprocessor falls back to deriving the
/// states from the result's lineage directly.
pub fn rank_influence_with_cache(
    cache: &GroupedAggregateCache,
    result: &QueryResult,
    selected: &[usize],
    metric: &ErrorMetric,
) -> Result<InfluenceReport, CoreError> {
    let table = cache.table();
    if selected.is_empty() {
        return Err(CoreError::invalid("no suspicious outputs (S) were selected"));
    }
    for &s in selected {
        if s >= result.len() {
            return Err(CoreError::invalid(format!(
                "selected output {s} is out of range (result has {} rows)",
                result.len()
            )));
        }
    }
    let (item, call) = metric_aggregate(result, metric)?;

    // Aggregate state, input rows and per-tuple argument values of each
    // selected group — straight from the cache when it matches the result's
    // lineage, otherwise rebuilt from the lineage.
    let mut group_rows: Vec<Vec<RowId>> = Vec::with_capacity(selected.len());
    let mut group_values: Vec<Vec<Option<f64>>> = Vec::with_capacity(selected.len());
    let mut group_states: Vec<AggregateState> = Vec::with_capacity(selected.len());

    // The cache must answer for the *same* statement (not just the same
    // grouping — `item` indexes its SELECT list) and agree with the
    // result's lineage row-for-row; otherwise use the lineage directly.
    let cached_groups: Option<Vec<usize>> = if cache.statement() == &result.statement {
        selected
            .iter()
            .map(|&s| {
                cache
                    .find_group(&result.group_keys[s])
                    .filter(|&g| cache.group_rows(g) == result.inputs_of(s))
            })
            .collect()
    } else {
        None
    };
    match cached_groups {
        Some(groups) => {
            for &g in &groups {
                group_rows.push(cache.group_rows(g).to_vec());
                group_values
                    .push(cache.arg_values(g, item).expect("metric item is an aggregate").to_vec());
                group_states
                    .push(cache.state(g, item).expect("metric item is an aggregate").clone());
            }
        }
        None => {
            for &s in selected {
                let rows = result.inputs_of(s).to_vec();
                let values: Vec<Option<f64>> = rows
                    .iter()
                    .map(|&r| aggregate_arg_value(table, call, r))
                    .collect::<Result<_, _>>()?;
                let mut state = AggregateState::new(call.func);
                for v in &values {
                    state.add(*v);
                }
                group_rows.push(rows);
                group_values.push(values);
                group_states.push(state);
            }
        }
    }

    let current: Vec<Option<f64>> = group_states.iter().map(|s| s.finish().as_f64()).collect();
    let base_error = metric.evaluate(&current);

    // Leave-one-out per tuple, fanned out across threads. Each tuple clones
    // its group's state and removes its own contribution (a fresh clone per
    // tuple, so floating-point drift never accumulates across tuples);
    // min/max rebuild the group without the tuple instead.
    let tasks: Vec<(usize, usize)> = group_rows
        .iter()
        .enumerate()
        .flat_map(|(gi, rows)| (0..rows.len()).map(move |ti| (gi, ti)))
        .collect();
    let supports_removal = call.func.supports_removal();
    let mut influences = map_chunked(&tasks, |_, &(gi, ti)| {
        let value = group_values[gi][ti];
        // Aggregate value of the group without this tuple.
        let new_value = if supports_removal {
            let mut st = group_states[gi].clone();
            st.remove(value);
            st.finish().as_f64()
        } else {
            let mut st = AggregateState::new(group_states[gi].func());
            for (tj, v) in group_values[gi].iter().enumerate() {
                if tj != ti {
                    st.add(*v);
                }
            }
            st.finish().as_f64()
        };
        let mut hypothetical = current.clone();
        hypothetical[gi] = new_value;
        let new_error = metric.evaluate(&hypothetical);
        TupleInfluence {
            row: group_rows[gi][ti],
            group: selected[gi],
            influence: base_error - new_error,
        }
    });

    influences.sort_by(|a, b| b.influence.total_cmp(&a.influence).then(a.row.cmp(&b.row)));
    Ok(InfluenceReport { base_error, influences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, DataType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("hour", DataType::Int),
                ("sensorid", DataType::Int),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        // hour 0: normal. hour 1: one broken reading of 120.
        let rows = [(0, 1, 20.0), (0, 2, 22.0), (1, 1, 21.0), (1, 3, 120.0), (1, 2, 24.0)];
        for (h, s, temp) in rows {
            t.push_row(vec![Value::Int(h), Value::Int(s), Value::Float(temp)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        c
    }

    #[test]
    fn broken_reading_has_the_highest_influence() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        // Group 1 (hour=1) has avg 55; select it as suspicious.
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[1], &metric).unwrap();
        assert!((report.base_error - 25.0).abs() < 1e-9);
        // The 120-degree reading is row 3 and must rank first.
        assert_eq!(report.influences[0].row, RowId(3));
        assert_eq!(report.influences[0].group, 1);
        assert!(report.influences[0].influence > 0.0);
        // Removing the 120 reading brings avg(21,24)=22.5 under the threshold:
        // influence equals the full base error.
        assert!((report.influences[0].influence - 25.0).abs() < 1e-9);
        // Removing a small reading makes things worse (negative influence).
        let low = report.influence_of(RowId(2)).unwrap();
        assert!(low < 0.0);
        assert_eq!(report.inputs().len(), 3);
        assert_eq!(report.top_k(1), vec![RowId(3)]);
        assert!(report.influence_of(RowId(0)).is_none());
    }

    #[test]
    fn works_for_sum_and_count_and_minmax() {
        let c = catalog();
        let table = c.table("readings").unwrap();
        for (sql, column) in [
            ("SELECT hour, sum(temp) AS v FROM readings GROUP BY hour", "v"),
            ("SELECT hour, count(*) AS v FROM readings GROUP BY hour", "v"),
            ("SELECT hour, max(temp) AS v FROM readings GROUP BY hour", "v"),
            ("SELECT hour, min(temp) AS v FROM readings GROUP BY hour", "v"),
        ] {
            let r = execute_sql(&c, sql).unwrap();
            let metric = ErrorMetric::too_high(column, 0.0);
            let report = rank_influence(table, &r, &[1], &metric).unwrap();
            assert_eq!(report.influences.len(), 3, "{sql}");
            assert!(report.base_error > 0.0, "{sql}");
            // For max(), removing the 120 reading must have the largest influence.
            if sql.contains("max") {
                assert_eq!(report.influences[0].row, RowId(3));
            }
        }
    }

    #[test]
    fn metric_column_fallback_to_single_aggregate() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) AS mean_t FROM readings GROUP BY hour")
            .unwrap();
        // Column name does not match the alias, but there is only one
        // aggregate, so it is used.
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[1], &metric).unwrap();
        assert!(report.base_error > 0.0);

        // With two aggregates an unknown column is ambiguous.
        let r2 = execute_sql(&c, "SELECT hour, avg(temp), sum(temp) FROM readings GROUP BY hour")
            .unwrap();
        let err = rank_influence(
            c.table("readings").unwrap(),
            &r2,
            &[1],
            &ErrorMetric::too_high("nope", 0.0),
        );
        assert!(err.is_err());
        // Naming one of them works.
        let ok = rank_influence(
            c.table("readings").unwrap(),
            &r2,
            &[1],
            &ErrorMetric::too_high("sum_temp", 0.0),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let table = c.table("readings").unwrap();
        assert!(rank_influence(table, &r, &[], &metric).is_err());
        assert!(rank_influence(table, &r, &[9], &metric).is_err());
        // A query with no aggregate at all cannot host a metric.
        let r = execute_sql(&c, "SELECT hour FROM readings GROUP BY hour").unwrap();
        assert!(rank_influence(table, &r, &[0], &metric).is_err());
    }

    #[test]
    fn multiple_selected_groups_combine() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 10.0);
        let report = rank_influence(c.table("readings").unwrap(), &r, &[0, 1], &metric).unwrap();
        // base = (21-10) + (55-10) = 56
        assert!((report.base_error - 56.0).abs() < 1e-9);
        assert_eq!(report.influences.len(), 5);
        assert_eq!(report.influences[0].row, RowId(3));
    }

    #[test]
    fn mismatched_statement_cache_falls_back_to_lineage() {
        let c = catalog();
        let table = c.table("readings").unwrap();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        // A cache for a *different* statement with identical grouping: the
        // metric's SELECT-list index points at sum(temp) there, not
        // avg(temp). It must not be trusted.
        let other = dbwipes_engine::parse_select(
            "SELECT hour, count(*), sum(temp) FROM readings GROUP BY hour",
        )
        .unwrap();
        let wrong_cache = GroupedAggregateCache::build(table, &other).unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let via_wrong_cache = rank_influence_with_cache(&wrong_cache, &r, &[1], &metric).unwrap();
        let direct = rank_influence(table, &r, &[1], &metric).unwrap();
        assert_eq!(via_wrong_cache.influences, direct.influences);
        assert!((via_wrong_cache.base_error - 25.0).abs() < 1e-9);
    }

    #[test]
    fn stale_cache_falls_back_to_lineage() {
        let mut c = catalog();
        let r = execute_sql(&c, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        // Mutate the table after executing: the cache no longer matches the
        // result's lineage, so the lineage path must take over and produce
        // the same report the original table state implied... except values
        // are re-read from the (changed) table, as before the rewire.
        c.table_mut("readings").unwrap().delete_row(RowId(4)).unwrap();
        let table = c.table("readings").unwrap();
        let metric = ErrorMetric::too_high("avg_temp", 30.0);
        let report = rank_influence(table, &r, &[1], &metric).unwrap();
        // F still comes from the result's lineage: all three rows of hour 1.
        assert_eq!(report.influences.len(), 3);
        assert_eq!(report.influences[0].row, RowId(3));
    }
}

//! The interactive clean-as-you-query session.
//!
//! This is the headless equivalent of the DBWipes dashboard's control flow
//! (Figure 1, top): execute a query → visualize the results → select
//! suspicious results S → zoom in and select suspicious inputs D′ → pick an
//! error metric ε → receive ranked predicates → click a predicate to clean
//! the query → repeat. Every state transition of the web UI has a method
//! here, which is what the examples and the walkthrough experiments drive.

use crate::forms::{error_form_choices, ErrorFormChoice, QueryForm};
use crate::scatter::{result_series, zoom_series, Brush, ScatterSeries};
use dbwipes_core::{
    CleaningSession, CoreError, DbWipes, ErrorMetric, ExplainConfig, Explanation,
    ExplanationRequest, RankedPredicate,
};
use dbwipes_engine::{GroupedAggregateCache, QueryResult};
use dbwipes_storage::{RowId, Table};
use std::sync::Arc;

/// Where the user is in the Figure-1 interaction loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// No query has been executed yet.
    AwaitingQuery,
    /// Results are displayed; nothing selected.
    ResultsShown,
    /// Suspicious outputs (S) selected.
    OutputsSelected,
    /// Suspicious inputs (D′) selected.
    InputsSelected,
    /// Ranked predicates have been computed.
    Explained,
}

/// An interactive DBWipes session.
#[derive(Debug)]
pub struct DashboardSession {
    db: DbWipes,
    query_form: QueryForm,
    cleaning: Option<CleaningSession>,
    result: Option<QueryResult>,
    selected_outputs: Vec<usize>,
    selected_inputs: Vec<RowId>,
    metric: Option<ErrorMetric>,
    explain_config: ExplainConfig,
    explanation: Option<Explanation>,
}

impl DashboardSession {
    /// Creates a session over an existing backend.
    pub fn new(db: DbWipes) -> Self {
        DashboardSession {
            db,
            query_form: QueryForm::new(),
            cleaning: None,
            result: None,
            selected_outputs: Vec::new(),
            selected_inputs: Vec::new(),
            metric: None,
            explain_config: ExplainConfig::standard(),
            explanation: None,
        }
    }

    /// Access to the backend (e.g. to register more tables).
    pub fn backend_mut(&mut self) -> &mut DbWipes {
        &mut self.db
    }

    /// Access to the backend.
    pub fn backend(&self) -> &DbWipes {
        &self.db
    }

    /// The current interaction state.
    pub fn state(&self) -> SessionState {
        if self.result.is_none() {
            SessionState::AwaitingQuery
        } else if self.explanation.is_some() {
            SessionState::Explained
        } else if !self.selected_inputs.is_empty() {
            SessionState::InputsSelected
        } else if !self.selected_outputs.is_empty() {
            SessionState::OutputsSelected
        } else {
            SessionState::ResultsShown
        }
    }

    /// The SQL currently shown in the query form (including applied
    /// cleaning predicates).
    pub fn current_sql(&self) -> String {
        self.query_form.text().to_string()
    }

    /// The current query result, if a query has been executed.
    pub fn result(&self) -> Option<&QueryResult> {
        self.result.as_ref()
    }

    /// The table behind the current query.
    pub fn current_table(&self) -> Option<&Table> {
        let result = self.result.as_ref()?;
        self.db.catalog().table(&result.statement.table).ok()
    }

    /// Executes a new base query (step 1 of the loop), resetting every
    /// selection and any previously applied cleaning predicates.
    pub fn run_query(&mut self, sql: &str) -> Result<&QueryResult, CoreError> {
        let result = self.db.query(sql)?;
        self.cleaning = Some(CleaningSession::new(result.statement.clone()));
        self.query_form.show_statement(&result.statement);
        self.result = Some(result);
        self.selected_outputs.clear();
        self.selected_inputs.clear();
        self.metric = None;
        self.explanation = None;
        Ok(self.result.as_ref().expect("just set"))
    }

    /// Adopts a freshly appended snapshot of the current query's table
    /// (streaming ingestion): installs `table` into the session's catalog
    /// and replaces the displayed result with `refreshed`, which the
    /// caller computed over the new snapshot — typically via an
    /// append-absorbed cache's
    /// [`full_result_with_lineage`](GroupedAggregateCache::full_result_with_lineage).
    ///
    /// The user's in-flight investigation survives the refresh where it
    /// still makes sense:
    ///
    /// * selected outputs (S) are remapped by **group key**, so a group
    ///   that changed position keeps its selection while a vanished group
    ///   is dropped;
    /// * selected input rows (D′) are kept verbatim — appends never
    ///   renumber existing [`RowId`]s;
    /// * the error metric ε is kept;
    /// * a computed explanation is discarded: it described the old data,
    ///   and the next `debug!` recomputes it over the grown table.
    pub fn refresh_after_append(
        &mut self,
        table: Arc<Table>,
        refreshed: QueryResult,
    ) -> Result<(), CoreError> {
        let current =
            self.result.as_ref().ok_or_else(|| CoreError::invalid("no query result to refresh"))?;
        if refreshed.statement != current.statement {
            return Err(CoreError::invalid(
                "refreshed result was computed for a different statement",
            ));
        }
        if !table.name().eq_ignore_ascii_case(&refreshed.statement.table) {
            return Err(CoreError::invalid("snapshot is not the refreshed statement's table"));
        }
        let remapped: Vec<usize> = self
            .selected_outputs
            .iter()
            .filter_map(|&i| {
                let key = current.group_keys.get(i)?;
                refreshed.group_keys.iter().position(|k| k == key)
            })
            .collect();
        self.db.catalog_mut().install_snapshot(table);
        self.query_form.show_statement(&refreshed.statement);
        self.result = Some(refreshed);
        self.selected_outputs = remapped;
        self.explanation = None;
        Ok(())
    }

    /// The group-level scatter series (step 2: visualize results).
    pub fn plot(&self, x_column: &str, y_column: &str) -> Option<ScatterSeries> {
        result_series(self.result.as_ref()?, x_column, y_column)
    }

    /// Brushes the group-level plot to select suspicious outputs S (step 3).
    /// Returns the selected output indices.
    pub fn brush_outputs(&mut self, x_column: &str, y_column: &str, brush: Brush) -> Vec<usize> {
        let Some(series) = self.plot(x_column, y_column) else { return Vec::new() };
        let selected = brush.selected_outputs(&series);
        self.select_outputs(selected.clone());
        selected
    }

    /// Directly selects suspicious output rows (S).
    pub fn select_outputs(&mut self, outputs: Vec<usize>) {
        self.selected_outputs = outputs;
        self.selected_inputs.clear();
        self.explanation = None;
    }

    /// The currently selected outputs.
    pub fn selected_outputs(&self) -> &[usize] {
        &self.selected_outputs
    }

    /// The zoomed-in tuple series for the selected outputs (step 4: "zoom
    /// in" to the raw tuple values).
    pub fn zoom(&self, x_column: &str, y_column: &str) -> Option<ScatterSeries> {
        zoom_series(
            self.current_table()?,
            self.result.as_ref()?,
            &self.selected_outputs,
            x_column,
            y_column,
        )
    }

    /// Brushes the zoomed tuple plot to select suspicious inputs D′
    /// (step 5). Returns the selected input rows.
    pub fn brush_inputs(&mut self, x_column: &str, y_column: &str, brush: Brush) -> Vec<RowId> {
        let Some(series) = self.zoom(x_column, y_column) else { return Vec::new() };
        let selected = brush.selected_inputs(&series);
        self.select_inputs(selected.clone());
        selected
    }

    /// Directly selects suspicious input rows (D′).
    pub fn select_inputs(&mut self, inputs: Vec<RowId>) {
        self.selected_inputs = inputs;
        self.explanation = None;
    }

    /// The currently selected inputs.
    pub fn selected_inputs(&self) -> &[RowId] {
        &self.selected_inputs
    }

    /// The error-metric choices the form would offer for the current
    /// selection (Figure 5).
    pub fn metric_choices(&self, column: &str) -> Vec<ErrorFormChoice> {
        match &self.result {
            Some(result) => error_form_choices(result, &self.selected_outputs, column),
            None => Vec::new(),
        }
    }

    /// Picks the error metric ε.
    pub fn set_metric(&mut self, metric: ErrorMetric) {
        self.metric = Some(metric);
        self.explanation = None;
    }

    /// The currently selected error metric ε, if any.
    pub fn metric(&self) -> Option<&ErrorMetric> {
        self.metric.as_ref()
    }

    /// Replaces the pipeline configuration future `debug!` clicks run with
    /// (ranker weights, enumerator parameters, shard count, ...). Any
    /// previously computed explanation is discarded, since it no longer
    /// reflects the configuration.
    pub fn set_explain_config(&mut self, config: ExplainConfig) {
        self.explain_config = config;
        self.explanation = None;
    }

    /// The pipeline configuration `debug!` clicks run with.
    pub fn explain_config(&self) -> &ExplainConfig {
        &self.explain_config
    }

    /// The "Query, S, D′, ε" request the next `debug!` click would send to
    /// the backend, validated against the current interaction state. This
    /// is the single source of truth for how a request is formed —
    /// callers that cache or memoize explains (the server) key on exactly
    /// this value, so it cannot drift from what [`DashboardSession::debug`]
    /// actually runs.
    pub fn explain_request(&self) -> Result<ExplanationRequest, CoreError> {
        if self.result.is_none() {
            return Err(CoreError::invalid("no query has been executed"));
        }
        let metric = self
            .metric
            .clone()
            .ok_or_else(|| CoreError::invalid("no error metric has been selected"))?;
        if self.selected_outputs.is_empty() {
            return Err(CoreError::invalid("no suspicious outputs are selected"));
        }
        let mut request = ExplanationRequest::new(
            self.selected_outputs.clone(),
            self.selected_inputs.clone(),
            metric,
        );
        request.config = self.explain_config.clone();
        Ok(request)
    }

    /// Runs the backend pipeline ("debug!") and returns the ranked
    /// predicates.
    pub fn debug(&mut self) -> Result<&Explanation, CoreError> {
        let request = self.explain_request()?;
        let result = self.result.as_ref().expect("validated by explain_request");
        let explanation = self.db.explain(result, &request)?;
        self.explanation = Some(explanation);
        Ok(self.explanation.as_ref().expect("just set"))
    }

    /// [`DashboardSession::debug`] over an externally-owned incremental
    /// re-aggregation cache, skipping the per-explain cache build when the
    /// caller kept a cache alive across brushes (the server's
    /// `CacheRegistry`). The cache must have been built for the current
    /// result's statement over the session's current table data; a
    /// mismatched statement is rejected by the backend.
    pub fn debug_with_cache(
        &mut self,
        cache: &GroupedAggregateCache<'_>,
    ) -> Result<&Explanation, CoreError> {
        self.debug_with_cache_and_partitioner(cache, &dbwipes_core::FreshPartitioner)
    }

    /// [`DashboardSession::debug_with_cache`] with an explicit
    /// [`ShardPartitioner`](dbwipes_core::ShardPartitioner): when the
    /// explain config asks for a sharded ranking, the pipeline draws its
    /// partition from `partitioner` — the server passes its registry here
    /// so repeated sharded explains of an unchanged table reuse one
    /// retained partition instead of re-hashing every row per explain.
    pub fn debug_with_cache_and_partitioner(
        &mut self,
        cache: &GroupedAggregateCache<'_>,
        partitioner: &dyn dbwipes_core::ShardPartitioner,
    ) -> Result<&Explanation, CoreError> {
        let request = self.explain_request()?;
        let result = self.result.as_ref().expect("validated by explain_request");
        let explanation =
            dbwipes_core::explain_with_partitioner(cache, result, &request, partitioner)?;
        self.explanation = Some(explanation);
        Ok(self.explanation.as_ref().expect("just set"))
    }

    /// Installs an explanation that was computed earlier for this session's
    /// *current* query, selections and metric — the server's explanation
    /// memo replaying a memoized `debug!` answer. The session must be in a
    /// state where `debug` would be legal (query run, S selected, ε
    /// picked); the caller is responsible for only replaying an
    /// explanation whose request matches that state, which the memo
    /// guarantees by keying on exactly those inputs.
    pub fn install_explanation(
        &mut self,
        explanation: Explanation,
    ) -> Result<&Explanation, CoreError> {
        self.explain_request()?;
        self.explanation = Some(explanation);
        Ok(self.explanation.as_ref().expect("just set"))
    }

    /// The ranked predicates of the last `debug()` call.
    pub fn ranked_predicates(&self) -> &[RankedPredicate] {
        self.explanation.as_ref().map(|e| e.predicates.as_slice()).unwrap_or(&[])
    }

    /// Clicks the `index`-th ranked predicate: the predicate is added to the
    /// query as `AND NOT (...)`, the query re-executes, and the
    /// visualization/query form update (step 7). Returns the new result.
    pub fn click_predicate(&mut self, index: usize) -> Result<&QueryResult, CoreError> {
        let predicate =
            self.ranked_predicates().get(index).map(|p| p.predicate.clone()).ok_or_else(|| {
                CoreError::invalid(format!("no ranked predicate at index {index}"))
            })?;
        let cleaning = self
            .cleaning
            .as_mut()
            .ok_or_else(|| CoreError::invalid("no query has been executed"))?;
        cleaning.apply(predicate);
        self.reexecute_cleaned()
    }

    /// Un-applies the most recently clicked predicate and re-executes.
    pub fn undo_clean(&mut self) -> Result<&QueryResult, CoreError> {
        let cleaning = self
            .cleaning
            .as_mut()
            .ok_or_else(|| CoreError::invalid("no query has been executed"))?;
        cleaning.undo();
        self.reexecute_cleaned()
    }

    /// Re-executes the cleaning session's current (rewritten) statement and
    /// resets the visualization state — the one place encoding what a
    /// predicate click or undo does to the session, so apply and undo
    /// cannot drift apart.
    fn reexecute_cleaned(&mut self) -> Result<&QueryResult, CoreError> {
        let cleaning = self
            .cleaning
            .as_ref()
            .ok_or_else(|| CoreError::invalid("no query has been executed"))?;
        let table =
            self.db.catalog().table(&cleaning.base_statement().table).map_err(CoreError::from)?;
        let result = cleaning.execute(table)?;
        self.query_form.show_statement(&result.statement);
        self.result = Some(result);
        self.selected_outputs.clear();
        self.selected_inputs.clear();
        self.explanation = None;
        Ok(self.result.as_ref().expect("just set"))
    }

    /// The cleaning predicates applied so far.
    pub fn applied_predicates(&self) -> &[dbwipes_storage::ConjunctivePredicate] {
        self.cleaning.as_ref().map(|c| c.applied()).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_data::{generate_sensor, SensorConfig};

    fn session() -> (DashboardSession, dbwipes_data::SensorDataset) {
        let ds = generate_sensor(&SensorConfig {
            num_readings: 5_400,
            failing_sensors: vec![15],
            ..SensorConfig::small()
        });
        let mut db = DbWipes::new();
        db.register(ds.table.clone()).unwrap();
        (DashboardSession::new(db), ds)
    }

    #[test]
    fn full_interaction_loop_matches_figure_one() {
        let (mut s, ds) = session();
        assert_eq!(s.state(), SessionState::AwaitingQuery);
        assert!(s.result().is_none());
        assert!(s.debug().is_err());

        // 1. Execute the window query.
        s.run_query(&ds.window_query()).unwrap();
        assert_eq!(s.state(), SessionState::ResultsShown);
        assert!(s.current_sql().contains("GROUP BY window"));

        // 2-3. Visualize and brush the suspicious (high stddev) windows.
        let plot = s.plot("window", "std_temp").unwrap();
        assert!(!plot.is_empty());
        let selected = s.brush_outputs("window", "std_temp", Brush::above(8.0));
        assert!(!selected.is_empty());
        assert_eq!(s.state(), SessionState::OutputsSelected);
        assert_eq!(s.selected_outputs(), selected.as_slice());

        // 4-5. Zoom in and brush the >100F tuples as D'.
        let zoom = s.zoom("sensorid", "temp").unwrap();
        assert!(zoom.len() > selected.len());
        let inputs = s.brush_inputs("sensorid", "temp", Brush::above(100.0));
        assert!(!inputs.is_empty());
        assert_eq!(s.state(), SessionState::InputsSelected);
        assert!(inputs.iter().all(|r| ds.truth.is_error(*r)));

        // 6. The error form offers a "too high" choice; pick it.
        let choices = s.metric_choices("std_temp");
        assert!(!choices.is_empty());
        s.set_metric(choices[0].metric.clone());

        // Debug!
        let explanation = s.debug().unwrap();
        assert!(!explanation.predicates.is_empty());
        assert_eq!(s.state(), SessionState::Explained);
        let best_text = s.ranked_predicates()[0].predicate.to_string();
        assert!(
            best_text.contains("sensorid") || best_text.contains("voltage"),
            "best predicate: {best_text}"
        );

        // 7. Click the best predicate: the query is rewritten and the spread
        // returns to normal.
        let before_max_std = max_col(s.result().unwrap(), "std_temp");
        s.click_predicate(0).unwrap();
        assert!(s.current_sql().contains("NOT ("));
        assert_eq!(s.applied_predicates().len(), 1);
        let after_max_std = max_col(s.result().unwrap(), "std_temp");
        assert!(after_max_std < before_max_std);
        assert_eq!(s.state(), SessionState::ResultsShown);

        // Undo restores the original query.
        s.undo_clean().unwrap();
        assert!(s.applied_predicates().is_empty());
        let restored_max_std = max_col(s.result().unwrap(), "std_temp");
        assert!((restored_max_std - before_max_std).abs() < 1e-9);
    }

    fn max_col(result: &QueryResult, column: &str) -> f64 {
        let idx = result.column_index(column).unwrap();
        result.rows.iter().filter_map(|r| r[idx].as_f64()).fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn invalid_interactions_are_rejected() {
        let (mut s, ds) = session();
        assert!(s.run_query("not sql at all").is_err());
        assert!(s.plot("a", "b").is_none());
        assert!(s.zoom("a", "b").is_none());
        assert!(s.metric_choices("x").is_empty());
        assert!(s.click_predicate(0).is_err());
        assert!(s.undo_clean().is_err());

        s.run_query(&ds.window_query()).unwrap();
        // Debug without metric or selection.
        assert!(s.debug().is_err());
        s.select_outputs(vec![0]);
        assert!(s.debug().is_err());
        s.set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.0));
        // Clicking a predicate before debug fails.
        assert!(s.click_predicate(0).is_err());
        // Brushing an unknown column selects nothing.
        assert!(s.brush_outputs("nope", "std_temp", Brush::above(0.0)).is_empty());
        assert!(s.brush_inputs("nope", "temp", Brush::above(0.0)).is_empty());
    }

    #[test]
    fn debug_with_external_cache_matches_plain_debug() {
        let (mut s, ds) = session();
        s.run_query(&ds.window_query()).unwrap();
        s.brush_outputs("window", "std_temp", Brush::above(8.0));
        s.brush_inputs("sensorid", "temp", Brush::above(100.0));
        let choices = s.metric_choices("std_temp");
        s.set_metric(choices[0].metric.clone());

        // Snapshot the table (clones preserve identity and version) so the
        // cache does not borrow from the session it is handed back to.
        let table = s.current_table().unwrap().clone();
        let stmt = s.result().unwrap().statement.clone();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        // A cache built for a different statement is rejected up front.
        let wrong_stmt = dbwipes_engine::parse_select(
            "SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid",
        )
        .unwrap();
        let wrong = GroupedAggregateCache::build(&table, &wrong_stmt).unwrap();
        assert!(s.debug_with_cache(&wrong).is_err());

        let cached: Vec<_> = s
            .debug_with_cache(&cache)
            .unwrap()
            .predicates
            .iter()
            .map(|p| (p.predicate.clone(), p.score))
            .collect();
        let plain: Vec<_> =
            s.debug().unwrap().predicates.iter().map(|p| (p.predicate.clone(), p.score)).collect();
        assert_eq!(cached, plain);
        assert_eq!(s.state(), SessionState::Explained);
    }

    #[test]
    fn sharded_config_flows_into_debug() {
        let (mut s, ds) = session();
        s.run_query(&ds.window_query()).unwrap();
        s.brush_outputs("window", "std_temp", Brush::above(8.0));
        s.brush_inputs("sensorid", "temp", Brush::above(100.0));
        let choices = s.metric_choices("std_temp");
        s.set_metric(choices[0].metric.clone());
        let baseline: Vec<_> =
            s.debug().unwrap().predicates.iter().map(|p| p.predicate.clone()).collect();

        let mut config = ExplainConfig::standard();
        config.shards = 4;
        s.set_explain_config(config);
        // Changing the configuration discards the stale explanation...
        assert!(s.ranked_predicates().is_empty());
        assert_eq!(s.explain_config().shards, 4);
        assert_eq!(s.explain_request().unwrap().config.shards, 4);
        // ...and the sharded re-run finds the same predicate set.
        let sharded: Vec<_> =
            s.debug().unwrap().predicates.iter().map(|p| p.predicate.clone()).collect();
        let mut a = baseline.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        let mut b = sharded.iter().map(|p| p.to_string()).collect::<Vec<_>>();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn refresh_after_append_keeps_selections_and_drops_the_stale_explanation() {
        let (mut s, ds) = session();
        s.run_query(&ds.window_query()).unwrap();
        s.brush_outputs("window", "std_temp", Brush::above(8.0));
        s.brush_inputs("sensorid", "temp", Brush::above(100.0));
        let choices = s.metric_choices("std_temp");
        s.set_metric(choices[0].metric.clone());
        s.debug().unwrap();
        assert_eq!(s.state(), SessionState::Explained);
        let selected_keys: Vec<Vec<dbwipes_storage::Value>> = s
            .selected_outputs()
            .iter()
            .map(|&i| s.result().unwrap().group_keys[i].clone())
            .collect();
        let inputs_before = s.selected_inputs().to_vec();

        // Grow a snapshot of the table (same identity, appended epoch) and
        // compute the refreshed result the way the server would: through
        // an absorbed cache.
        let mut grown = s.current_table().unwrap().clone();
        let row = |sensor: i64, temp: f64| {
            let mut r = Vec::new();
            for field in grown.schema().fields() {
                r.push(match field.name.as_str() {
                    "sensorid" => dbwipes_storage::Value::Int(sensor),
                    "temp" => dbwipes_storage::Value::Float(temp),
                    _ => dbwipes_storage::Value::Int(0),
                });
            }
            r
        };
        grown.push_rows(vec![row(3, 55.0), row(15, 140.0)]).unwrap();
        let grown = Arc::new(grown);
        let stmt = s.result().unwrap().statement.clone();
        let cache = GroupedAggregateCache::build_shared(Arc::clone(&grown), &stmt).unwrap();
        let refreshed = cache.full_result_with_lineage();

        // A mismatched statement is rejected before anything mutates.
        let other = s.backend().query("SELECT count(*) FROM readings").unwrap();
        assert!(s.refresh_after_append(Arc::clone(&grown), other).is_err());

        s.refresh_after_append(Arc::clone(&grown), refreshed).unwrap();
        // The session now reads the grown snapshot...
        assert_eq!(s.current_table().unwrap().epoch(), grown.epoch());
        // ...selections survived (remapped by key / kept verbatim)...
        let keys_after: Vec<Vec<dbwipes_storage::Value>> = s
            .selected_outputs()
            .iter()
            .map(|&i| s.result().unwrap().group_keys[i].clone())
            .collect();
        assert_eq!(keys_after, selected_keys);
        assert_eq!(s.selected_inputs(), inputs_before.as_slice());
        assert!(s.metric().is_some());
        // ...and the stale explanation is gone but recomputable.
        assert_eq!(s.state(), SessionState::InputsSelected);
        assert!(!s.debug().unwrap().predicates.is_empty());
    }

    #[test]
    fn selections_reset_on_new_query() {
        let (mut s, ds) = session();
        s.run_query(&ds.window_query()).unwrap();
        s.select_outputs(vec![0]);
        s.set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.0));
        s.run_query("SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid").unwrap();
        assert!(s.selected_outputs().is_empty());
        assert!(s.selected_inputs().is_empty());
        assert_eq!(s.state(), SessionState::ResultsShown);
        assert!(s.backend().catalog().contains("readings"));
        assert_eq!(s.backend_mut().catalog().len(), 1);
    }
}

//! Scatterplot preparation and brush selection.
//!
//! "Query results are automatically rendered as a scatterplot. When the
//! query contains a single group-by attribute, the group keys are plotted
//! on the x-axis and the aggregate values on the y-axis" (paper §2.2.1).
//! The user then *brushes* a rectangular region to select the suspicious
//! outputs S, zooms into the underlying tuples, and brushes again to select
//! the suspicious inputs D′ (Figure 4).
//!
//! This module is the headless equivalent: it turns a [`QueryResult`] into
//! plottable series, maps rectangular brushes back to output-row indices or
//! input [`RowId`]s, and prepares the zoomed-in tuple view.

use dbwipes_engine::QueryResult;
use dbwipes_storage::{RowId, Table};

/// A single point of a scatter series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// X coordinate (group key or tuple attribute).
    pub x: f64,
    /// Y coordinate (aggregate value or tuple attribute).
    pub y: f64,
    /// What the point refers to: an output row index (group view) or an
    /// input row id (zoomed tuple view).
    pub reference: PointRef,
}

/// What a scatter point refers back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointRef {
    /// Output row (group) `i` of the query result.
    Output(usize),
    /// Input row of the queried table.
    Input(RowId),
}

/// A plottable series plus axis labels.
#[derive(Debug, Clone)]
pub struct ScatterSeries {
    /// Name of the x axis (column).
    pub x_label: String,
    /// Name of the y axis (column).
    pub y_label: String,
    /// The points.
    pub points: Vec<ScatterPoint>,
}

impl ScatterSeries {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The (min, max) of the x coordinates (0,0 for an empty series).
    pub fn x_range(&self) -> (f64, f64) {
        range(self.points.iter().map(|p| p.x))
    }

    /// The (min, max) of the y coordinates (0,0 for an empty series).
    pub fn y_range(&self) -> (f64, f64) {
        range(self.points.iter().map(|p| p.y))
    }
}

fn range(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        any = true;
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if any {
        (lo, hi)
    } else {
        (0.0, 0.0)
    }
}

/// A rectangular brush in data coordinates (inclusive on all edges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brush {
    /// Left edge.
    pub x_min: f64,
    /// Right edge.
    pub x_max: f64,
    /// Bottom edge.
    pub y_min: f64,
    /// Top edge.
    pub y_max: f64,
}

impl Brush {
    /// A brush selecting every point whose y coordinate is at least `y`.
    pub fn above(y: f64) -> Brush {
        Brush { x_min: f64::NEG_INFINITY, x_max: f64::INFINITY, y_min: y, y_max: f64::INFINITY }
    }

    /// A brush selecting every point whose y coordinate is at most `y`.
    pub fn below(y: f64) -> Brush {
        Brush { x_min: f64::NEG_INFINITY, x_max: f64::INFINITY, y_min: f64::NEG_INFINITY, y_max: y }
    }

    /// A brush over an x interval (any y).
    pub fn x_between(x_min: f64, x_max: f64) -> Brush {
        Brush { x_min, x_max, y_min: f64::NEG_INFINITY, y_max: f64::INFINITY }
    }

    /// True when the point lies inside the brush.
    pub fn contains(&self, p: &ScatterPoint) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// The output-row indices selected by this brush (ignores input points).
    pub fn selected_outputs(&self, series: &ScatterSeries) -> Vec<usize> {
        series
            .points
            .iter()
            .filter(|p| self.contains(p))
            .filter_map(|p| match p.reference {
                PointRef::Output(i) => Some(i),
                PointRef::Input(_) => None,
            })
            .collect()
    }

    /// The input rows selected by this brush (ignores output points).
    pub fn selected_inputs(&self, series: &ScatterSeries) -> Vec<RowId> {
        series
            .points
            .iter()
            .filter(|p| self.contains(p))
            .filter_map(|p| match p.reference {
                PointRef::Input(r) => Some(r),
                PointRef::Output(_) => None,
            })
            .collect()
    }
}

/// Builds the group-level scatter series: `x_column` on the x-axis (usually
/// the group-by attribute) and `y_column` (an aggregate output) on the
/// y-axis. Rows whose coordinates are NULL or non-numeric are skipped.
pub fn result_series(
    result: &QueryResult,
    x_column: &str,
    y_column: &str,
) -> Option<ScatterSeries> {
    let x = result.column_index(x_column).ok()?;
    let y = result.column_index(y_column).ok()?;
    let points = result
        .rows
        .iter()
        .enumerate()
        .filter_map(|(i, row)| {
            Some(ScatterPoint {
                x: row.get(x)?.as_f64()?,
                y: row.get(y)?.as_f64()?,
                reference: PointRef::Output(i),
            })
        })
        .collect();
    Some(ScatterSeries { x_label: x_column.to_string(), y_label: y_column.to_string(), points })
}

/// Builds the zoomed-in tuple series for a set of selected output rows:
/// every input tuple of those groups is plotted with `x_column` / `y_column`
/// read from the base table (Figure 4, right panel). Tuples with NULL or
/// non-numeric coordinates are skipped.
pub fn zoom_series(
    table: &Table,
    result: &QueryResult,
    selected_outputs: &[usize],
    x_column: &str,
    y_column: &str,
) -> Option<ScatterSeries> {
    table.schema().index_of(x_column)?;
    table.schema().index_of(y_column)?;
    let rows = result.inputs_of_rows(selected_outputs);
    let points = rows
        .into_iter()
        .filter_map(|rid| {
            let x = table.value_by_name(rid, x_column).ok()?.as_f64()?;
            let y = table.value_by_name(rid, y_column).ok()?.as_f64()?;
            Some(ScatterPoint { x, y, reference: PointRef::Input(rid) })
        })
        .collect();
    Some(ScatterSeries { x_label: x_column.to_string(), y_label: y_column.to_string(), points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, DataType, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut t = Table::new(
            "readings",
            Schema::of(&[
                ("window", DataType::Int),
                ("sensorid", DataType::Int),
                ("temp", DataType::Float),
            ]),
        )
        .unwrap();
        for i in 0..60i64 {
            let window = i % 3;
            let temp = if window == 2 && i % 5 == 0 { 120.0 } else { 20.0 + (i % 4) as f64 };
            t.push_row(vec![Value::Int(window), Value::Int(i % 6), Value::Float(temp)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        c
    }

    #[test]
    fn result_series_plots_groups() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let s = result_series(&r, "window", "avg_temp").unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.x_label, "window");
        assert_eq!(s.x_range(), (0.0, 2.0));
        assert!(s.y_range().1 > 30.0);
        assert!(result_series(&r, "missing", "avg_temp").is_none());
    }

    #[test]
    fn brush_selects_the_anomalous_group() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let s = result_series(&r, "window", "avg_temp").unwrap();
        let selected = Brush::above(30.0).selected_outputs(&s);
        assert_eq!(selected, vec![2]);
        assert!(Brush::above(30.0).selected_inputs(&s).is_empty());
        assert_eq!(Brush::below(30.0).selected_outputs(&s), vec![0, 1]);
        assert_eq!(Brush::x_between(1.0, 2.0).selected_outputs(&s), vec![1, 2]);
        let everything = Brush { x_min: -1e9, x_max: 1e9, y_min: -1e9, y_max: 1e9 };
        assert_eq!(everything.selected_outputs(&s).len(), 3);
    }

    #[test]
    fn zoom_exposes_the_raw_tuples() {
        let c = catalog();
        let r = execute_sql(&c, "SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let table = c.table("readings").unwrap();
        let zoom = zoom_series(table, &r, &[2], "sensorid", "temp").unwrap();
        assert_eq!(zoom.len(), 20);
        // Brushing the high-temperature tuples yields input row ids.
        let inputs = Brush::above(100.0).selected_inputs(&zoom);
        assert_eq!(inputs.len(), 4);
        for rid in &inputs {
            let temp = table.value_by_name(*rid, "temp").unwrap().as_f64().unwrap();
            assert!(temp > 100.0);
        }
        assert!(Brush::above(100.0).selected_outputs(&zoom).is_empty());
        assert!(zoom_series(table, &r, &[2], "nope", "temp").is_none());
    }

    #[test]
    fn empty_series_ranges() {
        let s = ScatterSeries { x_label: "x".into(), y_label: "y".into(), points: vec![] };
        assert_eq!(s.x_range(), (0.0, 0.0));
        assert_eq!(s.y_range(), (0.0, 0.0));
        assert!(s.is_empty());
    }
}

//! # dbwipes-dashboard
//!
//! The headless DBWipes dashboard: every interaction of the demo's web
//! front-end (Figure 2) is available as a programmatic API, so the
//! examples, integration tests and experiment harness can drive the same
//! tight loop conference attendees drove with a mouse:
//!
//! 1. submit an aggregate SQL query ([`QueryForm`]),
//! 2. view the result scatterplot ([`result_series`], [`render_ascii`]),
//! 3. brush suspicious outputs S ([`Brush`]),
//! 4. zoom into the raw tuples and brush suspicious inputs D′
//!    ([`zoom_series`]),
//! 5. pick an error metric from the dynamically generated form
//!    ([`error_form_choices`]),
//! 6. run the ranked-provenance backend and read the ranked predicates,
//! 7. click a predicate to rewrite and re-run the query
//!    ([`DashboardSession::click_predicate`]).
//!
//! [`DashboardSession`] ties the steps together into the Figure-1 state
//! machine.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod forms;
pub mod render;
pub mod scatter;
pub mod session;

pub use forms::{error_form_choices, ErrorFormChoice, QueryForm};
pub use render::render_ascii;
pub use scatter::{result_series, zoom_series, Brush, PointRef, ScatterPoint, ScatterSeries};
pub use session::{DashboardSession, SessionState};

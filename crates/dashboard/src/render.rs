//! ASCII rendering of scatter series.
//!
//! The real DBWipes dashboard draws d3 scatterplots; the headless
//! reproduction renders the same series as fixed-size character grids so
//! the examples and report binaries can show Figure 4 / Figure 7 style
//! plots in a terminal.

use crate::scatter::ScatterSeries;

/// Renders the series as an ASCII plot of `width` × `height` characters
/// (plus axes). Points are drawn with `*`; multiple points in one cell are
/// drawn with `#`.
pub fn render_ascii(series: &ScatterSeries, width: usize, height: usize) -> String {
    let width = width.clamp(10, 200);
    let height = height.clamp(5, 60);
    if series.is_empty() {
        return format!("(empty plot: {} vs {})\n", series.y_label, series.x_label);
    }
    let (x_lo, x_hi) = series.x_range();
    let (y_lo, y_hi) = series.y_range();
    let x_span = if (x_hi - x_lo).abs() < f64::EPSILON { 1.0 } else { x_hi - x_lo };
    let y_span = if (y_hi - y_lo).abs() < f64::EPSILON { 1.0 } else { y_hi - y_lo };

    let mut grid = vec![vec![' '; width]; height];
    for p in &series.points {
        let col = (((p.x - x_lo) / x_span) * (width - 1) as f64).round() as usize;
        let row = (((p.y - y_lo) / y_span) * (height - 1) as f64).round() as usize;
        let row = height - 1 - row.min(height - 1);
        let col = col.min(width - 1);
        grid[row][col] = if grid[row][col] == ' ' { '*' } else { '#' };
    }

    let mut out = String::new();
    out.push_str(&format!("{} (y: {:.2} .. {:.2})\n", series.y_label, y_lo, y_hi));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(" {} (x: {:.2} .. {:.2})\n", series.x_label, x_lo, x_hi));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::{PointRef, ScatterPoint};

    fn series(points: Vec<(f64, f64)>) -> ScatterSeries {
        ScatterSeries {
            x_label: "day".into(),
            y_label: "total".into(),
            points: points
                .into_iter()
                .enumerate()
                .map(|(i, (x, y))| ScatterPoint { x, y, reference: PointRef::Output(i) })
                .collect(),
        }
    }

    #[test]
    fn renders_points_and_axes() {
        let s = series(vec![(0.0, 0.0), (10.0, 5.0), (20.0, 10.0)]);
        let plot = render_ascii(&s, 40, 10);
        assert!(plot.contains("total"));
        assert!(plot.contains("day"));
        assert!(plot.matches('*').count() >= 3 || plot.contains('#'));
        assert!(plot.lines().count() >= 12);
    }

    #[test]
    fn overlapping_points_are_marked() {
        let s = series(vec![(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        let plot = render_ascii(&s, 20, 8);
        assert!(plot.contains('#'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = series(vec![(5.0, 5.0)]);
        let plot = render_ascii(&s, 20, 8);
        assert!(plot.contains('*'));
    }

    #[test]
    fn empty_series_and_clamped_dimensions() {
        let s = series(vec![]);
        assert!(render_ascii(&s, 40, 10).contains("empty plot"));
        let s = series(vec![(0.0, 0.0), (1.0, 1.0)]);
        let tiny = render_ascii(&s, 1, 1);
        assert!(tiny.lines().count() >= 7); // clamped to at least 10x5
    }
}

//! The dashboard's input forms: the SQL query form and the dynamic error
//! metric form.
//!
//! "Users submit aggregate SQL queries using the web form ... the frontend
//! dynamically offers the user a choice of predefined metric functions
//! depending on the query results that are highlighted by the user"
//! (paper §2.2.1, Figures 3 and 5).

use dbwipes_core::{suggest_metrics, ErrorMetric};
use dbwipes_engine::{parse_select, EngineError, QueryResult, SelectStatement};

/// The query input form (Figure 3): free-text SQL plus validation.
#[derive(Debug, Clone, Default)]
pub struct QueryForm {
    text: String,
}

impl QueryForm {
    /// Creates an empty form.
    pub fn new() -> Self {
        QueryForm::default()
    }

    /// Replaces the form's SQL text.
    pub fn set_text(&mut self, sql: impl Into<String>) {
        self.text = sql.into();
    }

    /// The current SQL text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Validates the SQL, returning the parsed statement or the parse error
    /// the form would display inline.
    pub fn validate(&self) -> Result<SelectStatement, EngineError> {
        parse_select(&self.text)
    }

    /// Updates the form to show a rewritten statement (after the user clicks
    /// a ranked predicate the query form "is automatically updated").
    pub fn show_statement(&mut self, statement: &SelectStatement) {
        self.text = statement.to_sql();
    }
}

/// One choice offered by the error metric form.
#[derive(Debug, Clone)]
pub struct ErrorFormChoice {
    /// Human-readable label shown to the user (e.g. "value is too high").
    pub label: String,
    /// The metric that choice corresponds to.
    pub metric: ErrorMetric,
}

/// Builds the error metric form for a selection of output rows: the choices
/// are derived from how the selected values differ from the unselected ones
/// (Figure 5's "value is too high", "should be equal to ...").
pub fn error_form_choices(
    result: &QueryResult,
    selected_rows: &[usize],
    column: &str,
) -> Vec<ErrorFormChoice> {
    let Ok(col) = result.column_index(column) else { return Vec::new() };
    let mut selected = Vec::new();
    let mut unselected = Vec::new();
    for (i, row) in result.rows.iter().enumerate() {
        let Some(v) = row.get(col).and_then(|v| v.as_f64()) else { continue };
        if selected_rows.contains(&i) {
            selected.push(v);
        } else {
            unselected.push(v);
        }
    }
    suggest_metrics(column, &selected, &unselected)
        .into_iter()
        .map(|metric| ErrorFormChoice { label: metric.label(), metric })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_core::MetricKind;
    use dbwipes_engine::execute_sql;
    use dbwipes_storage::{Catalog, DataType, Schema, Table, Value};

    fn result() -> QueryResult {
        let mut t = Table::new(
            "readings",
            Schema::of(&[("window", DataType::Int), ("temp", DataType::Float)]),
        )
        .unwrap();
        for (w, temp) in [(0, 20.0), (0, 22.0), (1, 120.0), (1, 118.0), (2, 21.0)] {
            t.push_row(vec![Value::Int(w), Value::Float(temp)]).unwrap();
        }
        let mut c = Catalog::new();
        c.register(t).unwrap();
        execute_sql(&c, "SELECT window, avg(temp) AS a FROM readings GROUP BY window").unwrap()
    }

    #[test]
    fn query_form_validates_and_updates() {
        let mut form = QueryForm::new();
        assert!(form.validate().is_err());
        form.set_text("SELECT window, avg(temp) FROM readings GROUP BY window");
        let stmt = form.validate().unwrap();
        assert_eq!(stmt.table, "readings");
        assert_eq!(form.text(), "SELECT window, avg(temp) FROM readings GROUP BY window");

        let rewritten = stmt.with_additional_filter(
            dbwipes_storage::col("temp").lt_eq(dbwipes_storage::lit(100.0)),
        );
        form.show_statement(&rewritten);
        assert!(form.text().contains("WHERE temp <= 100.0"));
        assert!(form.validate().is_ok());
    }

    #[test]
    fn error_form_offers_too_high_for_high_selection() {
        let r = result();
        // Row 1 is the hot window (avg 119).
        let choices = error_form_choices(&r, &[1], "a");
        assert!(!choices.is_empty());
        assert!(matches!(choices[0].metric.kind, MetricKind::TooHigh { .. }));
        assert!(choices[0].label.contains("too high"));
        // Unknown column or empty selection yields no choices.
        assert!(error_form_choices(&r, &[1], "missing").is_empty());
        assert!(error_form_choices(&r, &[], "a").is_empty());
    }

    #[test]
    fn error_form_offers_too_low_for_low_selection() {
        let r = result();
        let choices = error_form_choices(&r, &[0, 2], "a");
        assert!(choices.iter().any(|c| matches!(c.metric.kind, MetricKind::TooLow { .. })));
    }
}

//! Serialization of [`GroupedAggregateCache`]s for durable warm-cache
//! rehydration.
//!
//! A restarted server re-registers restored tables with their persisted
//! identity stamps, so a cache snapshot taken before the restart still
//! *keys* correctly — this module makes it still *exist*: the retained
//! groups (keys, row lists, aggregate states, argument values and output
//! templates) are serialized verbatim, and every derivable index is
//! rebuilt on load (`GroupedAggregateCache::from_snapshot`) exactly as
//! the original build would have produced it. Restoring is therefore a
//! deserialization pass, not a statement re-execution — measurably faster
//! than a cold rebuild (`bench_snapshot_recovery`) and bit-identical in
//! every answer.
//!
//! The byte format reuses the storage crate's wire codec
//! ([`ByteWriter`] / [`ByteReader`]): little-endian integers, IEEE-754
//! bit patterns, length-prefixed strings, and a trailing FNV-1a checksum
//! over the whole image. Malformed input — truncation, bad magic, an
//! unknown state tag, dangling row references — yields a clean error,
//! never a panic.
//!
//! [`ByteWriter`]: dbwipes_storage::persist::ByteWriter
//! [`ByteReader`]: dbwipes_storage::persist::ByteReader

use crate::aggregate::AggregateState;
use crate::error::EngineError;
use crate::incremental::{CachedGroup, GroupedAggregateCache};
use crate::parser::parse_select;
use dbwipes_storage::persist::{fnv1a64, get_value, put_value, ByteReader, ByteWriter};
use dbwipes_storage::{StorageError, Table};
use std::sync::Arc;

/// Version stamp of the cache snapshot image; readers reject any other
/// value.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Magic bytes of a cache snapshot image.
const CACHE_MAGIC: &[u8; 4] = b"DBWC";

/// Serializes a cache (statement SQL, table stamps, and every retained
/// group) into a self-validating byte image.
pub fn encode_cache(cache: &GroupedAggregateCache<'_>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(CACHE_MAGIC);
    w.put_u32(CACHE_FORMAT_VERSION);
    w.put_u64(cache.table().id());
    w.put_u64(cache.table().version());
    w.put_str(&cache.statement().to_sql());
    let groups = cache.snapshot_groups();
    w.put_u64(groups.len() as u64);
    for group in groups {
        put_values(&mut w, &group.key);
        w.put_u64(group.rows.len() as u64);
        for rid in &group.rows {
            w.put_u64(rid.index() as u64);
        }
        w.put_u64(group.states.len() as u64);
        for state in &group.states {
            put_state(&mut w, state);
        }
        for args in &group.arg_values {
            w.put_u64(args.len() as u64);
            for v in args {
                match v {
                    Some(x) => {
                        w.put_bool(true);
                        w.put_f64(*x);
                    }
                    None => w.put_bool(false),
                }
            }
        }
        put_values(&mut w, &group.template);
    }
    let checksum = fnv1a64(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Decodes a cache image written by [`encode_cache`] against the restored
/// `table`. The image's table stamps must match `table` exactly — a
/// snapshot of different data is rejected rather than silently served.
pub fn decode_cache(
    bytes: &[u8],
    table: Arc<Table>,
) -> Result<GroupedAggregateCache<'static>, EngineError> {
    let corrupt =
        |msg: String| EngineError::Storage(StorageError::Corrupt(format!("cache snapshot: {msg}")));
    if bytes.len() < 8 {
        return Err(corrupt("image too short".into()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let mut r = ByteReader::new(body);
    let read = |r: &mut ByteReader<'_>| -> Result<GroupedAggregateCache<'static>, EngineError> {
        if r.take(4).map_err(EngineError::Storage)? != CACHE_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = r.get_u32().map_err(EngineError::Storage)?;
        if version != CACHE_FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (this build reads {CACHE_FORMAT_VERSION})"
            )));
        }
        let table_id = r.get_u64().map_err(EngineError::Storage)?;
        let table_version = r.get_u64().map_err(EngineError::Storage)?;
        if table_id != table.id() || table_version != table.version() {
            return Err(corrupt(format!(
                "stamped for table ({table_id}, {table_version}) but restoring against ({}, {})",
                table.id(),
                table.version()
            )));
        }
        let sql = r.get_str().map_err(EngineError::Storage)?;
        let stmt = parse_select(&sql)?;
        let group_count = r.get_len(1).map_err(EngineError::Storage)?;
        let mut groups = Vec::with_capacity(group_count);
        for _ in 0..group_count {
            let key = get_values(r)?;
            let row_count = r.get_len(8).map_err(EngineError::Storage)?;
            let mut rows = Vec::with_capacity(row_count);
            for _ in 0..row_count {
                rows.push((r.get_u64().map_err(EngineError::Storage)? as usize).into());
            }
            let state_count = r.get_len(1).map_err(EngineError::Storage)?;
            let mut states = Vec::with_capacity(state_count);
            for _ in 0..state_count {
                states.push(get_state(r)?);
            }
            let mut arg_values = Vec::with_capacity(state_count);
            for _ in 0..state_count {
                let n = r.get_len(1).map_err(EngineError::Storage)?;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    let present = r.get_bool().map_err(EngineError::Storage)?;
                    args.push(if present {
                        Some(r.get_f64().map_err(EngineError::Storage)?)
                    } else {
                        None
                    });
                }
                arg_values.push(args);
            }
            let template = get_values(r)?;
            groups.push(CachedGroup { key, rows, states, arg_values, template });
        }
        GroupedAggregateCache::from_snapshot(table.clone(), stmt, groups)
    };
    read(&mut r)
}

fn put_values(w: &mut ByteWriter, values: &[dbwipes_storage::Value]) {
    w.put_u64(values.len() as u64);
    for v in values {
        put_value(w, v);
    }
}

fn get_values(r: &mut ByteReader<'_>) -> Result<Vec<dbwipes_storage::Value>, EngineError> {
    let n = r.get_len(1).map_err(EngineError::Storage)?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(r).map_err(EngineError::Storage)?);
    }
    Ok(values)
}

/// State tag + raw fields; `remove`/`merge` semantics are reconstructed
/// from the variant, so a restored state behaves identically.
fn put_state(w: &mut ByteWriter, state: &AggregateState) {
    match state {
        AggregateState::Avg { sum, count } => {
            w.put_u8(1);
            w.put_f64(*sum);
            w.put_u64(*count);
        }
        AggregateState::Sum { sum, count } => {
            w.put_u8(2);
            w.put_f64(*sum);
            w.put_u64(*count);
        }
        AggregateState::Count { count } => {
            w.put_u8(3);
            w.put_u64(*count);
        }
        AggregateState::Min { min } => {
            w.put_u8(4);
            put_opt_f64(w, min);
        }
        AggregateState::Max { max } => {
            w.put_u8(5);
            put_opt_f64(w, max);
        }
        AggregateState::Moments { sum, sum_sq, count, stddev } => {
            w.put_u8(6);
            w.put_f64(*sum);
            w.put_f64(*sum_sq);
            w.put_u64(*count);
            w.put_bool(*stddev);
        }
    }
}

fn get_state(r: &mut ByteReader<'_>) -> Result<AggregateState, EngineError> {
    let tag = r.get_u8().map_err(EngineError::Storage)?;
    let s = |e: StorageError| EngineError::Storage(e);
    Ok(match tag {
        1 => AggregateState::Avg { sum: r.get_f64().map_err(s)?, count: r.get_u64().map_err(s)? },
        2 => AggregateState::Sum { sum: r.get_f64().map_err(s)?, count: r.get_u64().map_err(s)? },
        3 => AggregateState::Count { count: r.get_u64().map_err(s)? },
        4 => AggregateState::Min { min: get_opt_f64(r)? },
        5 => AggregateState::Max { max: get_opt_f64(r)? },
        6 => AggregateState::Moments {
            sum: r.get_f64().map_err(s)?,
            sum_sq: r.get_f64().map_err(s)?,
            count: r.get_u64().map_err(s)?,
            stddev: r.get_bool().map_err(s)?,
        },
        other => {
            return Err(EngineError::Storage(StorageError::Corrupt(format!(
                "cache snapshot: unknown aggregate state tag {other}"
            ))));
        }
    })
}

fn put_opt_f64(w: &mut ByteWriter, v: &Option<f64>) {
    match v {
        Some(x) => {
            w.put_bool(true);
            w.put_f64(*x);
        }
        None => w.put_bool(false),
    }
}

fn get_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, EngineError> {
    let present = r.get_bool().map_err(EngineError::Storage)?;
    Ok(if present { Some(r.get_f64().map_err(EngineError::Storage)?) } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::ExclusionQuery;
    use dbwipes_storage::{DataType, Schema, Value};

    fn table() -> Arc<Table> {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("room", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        for i in 0..200i64 {
            t.push_row(vec![
                Value::Int(i % 8),
                if i % 13 == 0 { Value::Null } else { Value::Float(20.0 + (i % 11) as f64) },
                Value::str(if i % 2 == 0 { "lab" } else { "hall" }),
            ])
            .unwrap();
        }
        t.delete_row(5.into()).unwrap();
        Arc::new(t)
    }

    fn build(t: &Arc<Table>, sql: &str) -> GroupedAggregateCache<'static> {
        let stmt = parse_select(sql).unwrap();
        GroupedAggregateCache::build_shared(Arc::clone(t), &stmt).unwrap()
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let t = table();
        for sql in [
            "SELECT sensorid, avg(temp), count(*), min(temp), max(temp), stddev(temp) \
             FROM readings GROUP BY sensorid",
            "SELECT room, sum(temp) FROM readings WHERE sensorid >= 2 GROUP BY room",
            "SELECT avg(temp) FROM readings",
        ] {
            let cold = build(&t, sql);
            let restored = decode_cache(&encode_cache(&cold), Arc::clone(&t)).unwrap();
            assert_eq!(restored.fingerprint(), cold.fingerprint(), "{sql}");
            let a = cold.full_result();
            let b = restored.full_result();
            assert_eq!(a.rows, b.rows, "{sql}");
            // Exclusions exercise the retained states and arg values.
            let excluded: Vec<_> = (0..50).map(dbwipes_storage::RowId).collect();
            assert_eq!(
                cold.result(&ExclusionQuery::new().excluding_rows(&excluded)).rows,
                restored.result(&ExclusionQuery::new().excluding_rows(&excluded)).rows,
                "{sql}"
            );
        }
    }

    #[test]
    fn wrong_table_version_is_rejected() {
        let t = table();
        let cold = build(&t, "SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid");
        let bytes = encode_cache(&cold);
        let mut mutated = (*t).clone();
        mutated.delete_row(0.into()).unwrap();
        let err = decode_cache(&bytes, Arc::new(mutated)).unwrap_err();
        assert!(err.to_string().contains("stamped for table"), "{err}");
    }

    #[test]
    fn truncated_and_corrupted_images_are_rejected_cleanly() {
        let t = table();
        let cold = build(&t, "SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid");
        let bytes = encode_cache(&cold);
        for cut in 0..bytes.len() {
            assert!(decode_cache(&bytes[..cut], Arc::clone(&t)).is_err(), "prefix {cut}");
        }
        for pos in [0, 4, 12, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            assert!(decode_cache(&bad, Arc::clone(&t)).is_err(), "flipped byte {pos}");
        }
    }

    #[test]
    fn dangling_row_references_are_rejected() {
        let t = table();
        let cold = build(&t, "SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid");
        // Re-encode against a shorter clone of the table: the row lists now
        // reference rows past the end, which from_snapshot must reject.
        let small = {
            let schema = t.schema().clone();
            let mut s = Table::new("readings", schema).unwrap();
            s.push_row(vec![Value::Int(0), Value::Float(20.0), Value::str("lab")]).unwrap();
            s
        };
        let mut bytes = encode_cache(&cold);
        // Patch the stamped identity to the small table's so only the row
        // bounds check can object.
        bytes[8..16].copy_from_slice(&small.id().to_le_bytes());
        bytes[16..24].copy_from_slice(&small.version().to_le_bytes());
        let body_len = bytes.len() - 8;
        let checksum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode_cache(&bytes, Arc::new(small)).unwrap_err();
        assert!(err.to_string().contains("references row"), "{err}");
    }
}

//! Incremental re-aggregation: answer "what does the result look like with
//! these rows excluded?" without re-executing the statement.
//!
//! DBWipes' interactivity promise rests on scoring many candidate
//! predicates quickly: the Predicate Ranker asks, for every candidate, how
//! the query result changes when the candidate's matching tuples are
//! excluded, and the Preprocessor asks the same question for every single
//! tuple of F (leave-one-out). Re-executing the full statement per question
//! is O(|D|) each time. Scorpion (Wu & Madden, PVLDB 2013) and the online
//! aggregation literature (Hellerstein et al., SIGMOD 1997) exploit the
//! same observation this module does: the standard SQL aggregates carry
//! *decomposable state*, so a tuple's contribution can be subtracted from a
//! retained [`AggregateState`] instead of recomputed from scratch.
//!
//! [`GroupedAggregateCache`] executes the statement **once**, retaining
//!
//! * the per-group [`AggregateState`] of every aggregate SELECT item,
//! * the per-group argument values each state consumed (for removal and for
//!   the recompute fallback), and
//! * a row → (group, position) index over the filtered input rows.
//!
//! [`GroupedAggregateCache::result`] (driven by an [`ExclusionQuery`])
//! then clones only the *touched* groups' states and calls
//! [`AggregateState::remove`] for the excluded tuples' contributions —
//! O(touched) instead of O(|D|).
//!
//! ## Removable vs. non-removable aggregates
//!
//! SUM / COUNT / AVG / STDDEV / VARIANCE are sum-like: their state is a few
//! running moments, and `remove` inverts `add` exactly. MIN and MAX are
//! **not** removable — after deleting the current extremum the new extremum
//! is unknown without a rescan — so `remove` reports failure and the cache
//! falls back to rebuilding that state from the group's retained argument
//! values (in original scan order, so results are identical to full
//! re-execution). The fallback is per-group, per-aggregate: a query mixing
//! `avg` and `max` pays the rescan only for `max` and only in groups that
//! actually lost rows. Results are therefore always *exact*, never
//! approximated.
//!
//! Groups whose rows are all excluded disappear from the result (matching
//! full re-execution), except for the single implicit group of a query
//! without GROUP BY, which remains and reports its empty-input values
//! (NULLs, `COUNT` = 0).
//!
//! Results carry no fine-grained lineage (equivalent to executing with
//! `capture_lineage: false`); callers that need lineage for the *original*
//! result should keep using [`crate::execute`].

use crate::aggregate::AggregateState;
use crate::ast::{AggregateCall, SelectExpr, SelectStatement};
use crate::error::EngineError;
use crate::executor::{
    build_groups, for_each_arg_value, output_order, output_schema, project_row, scan_filter,
    scan_filter_suffix, validate,
};
use crate::result::QueryResult;
use dbwipes_provenance::{Lineage, OperatorGraph, OperatorKind};
use dbwipes_storage::{RowId, RowSet, Schema, Table, TableEpoch, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// How a cache holds the table it indexed: borrowed from the caller (the
/// classic single-explain path, where the cache lives within one call
/// stack) or shared ownership of an immutable snapshot (the server's
/// cross-brush registry, whose caches must outlive any single request).
#[derive(Debug, Clone)]
enum TableStore<'t> {
    Borrowed(&'t Table),
    Shared(Arc<Table>),
}

impl std::ops::Deref for TableStore<'_> {
    type Target = Table;

    fn deref(&self) -> &Table {
        match self {
            TableStore::Borrowed(t) => t,
            TableStore::Shared(t) => t,
        }
    }
}

/// Identifies "this statement over this table data" — the key of the
/// server's cross-brush cache registry.
///
/// Two equal fingerprints guarantee a retained [`GroupedAggregateCache`]
/// is reusable: the statement's canonical SQL matches (rendered from the
/// parsed AST, so whitespace and keyword spelling are normalised; `SELECT
/// x` and `select   x` fingerprint identically, while identifier *case*
/// differences conservatively miss) and the table holds bit-identical data
/// ([`Table::id`] pins the logical table across re-registrations,
/// [`Table::version`] pins its mutation state). The lower-cased table name
/// rides along so a registry can invalidate by name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheFingerprint {
    /// Lower-cased table name (for invalidation by name).
    pub table_name: String,
    /// [`Table::id`] of the table.
    pub table_id: u64,
    /// Full [`Table::epoch`] of the table. Equality is exact, so lookups
    /// stay correct by construction; append-tolerant registries
    /// additionally match on [`CacheFingerprint::append_variant_of`] to
    /// find an older sibling worth absorbing instead of rebuilding.
    pub epoch: TableEpoch,
    /// The statement's canonical SQL rendering.
    pub statement: String,
}

impl CacheFingerprint {
    /// The fingerprint of `stmt` over the current data of `table`.
    pub fn of(table: &Table, stmt: &SelectStatement) -> Self {
        CacheFingerprint {
            table_name: table.name().to_ascii_lowercase(),
            table_id: table.id(),
            epoch: table.epoch(),
            statement: stmt.to_sql(),
        }
    }

    /// True when `self` and `other` describe the same statement over
    /// append-related data states of the same table: everything matches
    /// except the appended epoch stamp. A cache under either fingerprint
    /// can serve the other after [`GroupedAggregateCache::absorb_append`]
    /// (only forward, older → newer).
    pub fn append_variant_of(&self, other: &CacheFingerprint) -> bool {
        self.table_id == other.table_id
            && self.epoch.structural == other.epoch.structural
            && self.table_name == other.table_name
            && self.statement == other.statement
    }
}

/// Which input rows an [`ExclusionQuery`] excludes — either shape the
/// ranker produces, borrowed rather than copied.
#[derive(Debug, Clone, Copy, Default)]
enum Excluded<'q> {
    /// Exclude nothing (the full cached result).
    #[default]
    None,
    /// An explicit row list (duplicates and non-matching rows ignored).
    Rows(&'q [RowId]),
    /// A [`RowSet`] bitmap over the cache's row universe — the vectorized
    /// ranker's shape; set bits are consumed directly.
    Set(&'q RowSet),
}

/// A "what if these rows were deleted?" question for
/// [`GroupedAggregateCache::result`]: an exclusion selector (row list or
/// [`RowSet`] bitmap) optionally restricted to specific GROUP BY keys.
/// Borrowing builder — construct with [`ExclusionQuery::new`], chain
/// `excluding_rows` / `excluding_set` / `for_keys`, then pass to
/// [`GroupedAggregateCache::result`]:
///
/// ```ignore
/// cache.result(&ExclusionQuery::new().excluding_set(&bits).for_keys(&keys))
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExclusionQuery<'q> {
    excluded: Excluded<'q>,
    keys: Option<&'q [Vec<Value>]>,
}

impl<'q> ExclusionQuery<'q> {
    /// A query excluding nothing, over every group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Excludes the given rows (replacing any prior exclusion selector).
    pub fn excluding_rows(mut self, rows: &'q [RowId]) -> Self {
        self.excluded = Excluded::Rows(rows);
        self
    }

    /// Excludes the set bits of `set` (replacing any prior selector).
    pub fn excluding_set(mut self, set: &'q RowSet) -> Self {
        self.excluded = Excluded::Set(set);
        self
    }

    /// Restricts the answer to the groups whose GROUP BY key appears in
    /// `keys`, without materialising any other group.
    pub fn for_keys(mut self, keys: &'q [Vec<Value>]) -> Self {
        self.keys = Some(keys);
        self
    }
}

/// One materialised group: its key, its input rows, the per-aggregate
/// retained state and the per-aggregate argument values (aligned with the
/// row list). Crate-visible so the snapshot codec in [`crate::snapshot`]
/// can persist and restore groups verbatim.
#[derive(Debug, Clone)]
pub(crate) struct CachedGroup {
    pub(crate) key: Vec<Value>,
    pub(crate) rows: Vec<RowId>,
    /// One state per aggregate SELECT item, in SELECT-list order.
    pub(crate) states: Vec<AggregateState>,
    /// `arg_values[slot][pos]` = the value `states[slot]` consumed for
    /// `rows[pos]` (`None` = NULL input).
    pub(crate) arg_values: Vec<Vec<Option<f64>>>,
    /// The fully projected output row (aggregate slots included), reused
    /// verbatim for untouched groups.
    pub(crate) template: Vec<Value>,
}

/// A one-time execution of a statement, retained in a form that can answer
/// exclusion queries incrementally. Holds the table it was built from —
/// either borrowed ([`GroupedAggregateCache::build`]) or as a shared
/// immutable snapshot ([`GroupedAggregateCache::build_shared`], which
/// yields a `'static` cache suitable for long-lived registries) — so a
/// cache can never be asked about a different table than it indexed. See
/// the module docs for the design.
#[derive(Debug, Clone)]
pub struct GroupedAggregateCache<'t> {
    table: TableStore<'t>,
    stmt: SelectStatement,
    schema: Schema,
    groups: Vec<CachedGroup>,
    /// Bitmap of the input rows that passed the WHERE clause — the set the
    /// ranker intersects candidate-predicate bitmaps against.
    membership: RowSet,
    /// Dense row → (group index, position within the group's row list)
    /// lookup, valid only where `membership` is set.
    row_slots: Vec<(u32, u32)>,
    /// GROUP BY key → group index (keys are unique per group).
    key_index: HashMap<Vec<Value>, u32>,
    /// SELECT-list indices of the aggregate items (one per state slot).
    agg_item_indices: Vec<usize>,
    /// SELECT-list indices of the non-aggregate items.
    plain_item_indices: Vec<usize>,
}

impl<'t> GroupedAggregateCache<'t> {
    /// Executes `stmt` against `table` once, retaining the grouped
    /// aggregate states. Validation errors are the same ones
    /// [`crate::execute`] would report.
    pub fn build(table: &'t Table, stmt: &SelectStatement) -> Result<Self, EngineError> {
        Self::build_from(TableStore::Borrowed(table), stmt)
    }

    /// [`GroupedAggregateCache::build`] over a shared table snapshot. The
    /// returned cache co-owns the snapshot, so it has no borrowed lifetime
    /// and can be stored in a registry that outlives the building request
    /// (the server's cross-brush cache reuse).
    pub fn build_shared(
        table: Arc<Table>,
        stmt: &SelectStatement,
    ) -> Result<GroupedAggregateCache<'static>, EngineError> {
        GroupedAggregateCache::build_from(TableStore::Shared(table), stmt)
    }

    fn build_from(store: TableStore<'t>, stmt: &SelectStatement) -> Result<Self, EngineError> {
        let table: &Table = &store;
        validate(table, stmt)?;
        let filtered = scan_filter(table, stmt)?;
        let (group_keys, group_rows) = build_groups(table, stmt, filtered)?;

        let agg_calls: Vec<(usize, &AggregateCall)> = stmt
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match &item.expr {
                SelectExpr::Aggregate(call) => Some((i, call)),
                _ => None,
            })
            .collect();
        let plain_item_indices: Vec<usize> = stmt
            .items
            .iter()
            .enumerate()
            .filter(|(_, item)| !matches!(item.expr, SelectExpr::Aggregate(_)))
            .map(|(i, _)| i)
            .collect();

        let mut groups = Vec::with_capacity(group_keys.len());
        let mut membership = RowSet::empty(table.num_rows());
        let mut row_slots = vec![(0u32, 0u32); table.num_rows()];
        let mut key_index = HashMap::with_capacity(group_keys.len());
        for (gi, (key, rows)) in group_keys.into_iter().zip(group_rows).enumerate() {
            let mut states = Vec::with_capacity(agg_calls.len());
            let mut arg_values = Vec::with_capacity(agg_calls.len());
            for (_, call) in &agg_calls {
                let mut state = AggregateState::new(call.func);
                let mut values = Vec::with_capacity(rows.len());
                for_each_arg_value(table, call, &rows, |v| {
                    state.add(v);
                    values.push(v);
                })?;
                states.push(state);
                arg_values.push(values);
            }
            let agg_outputs: Vec<Value> = states.iter().map(|s| s.finish()).collect();
            let template = project_row(table, stmt, &key, &rows, &agg_outputs)?;
            for (pos, &rid) in rows.iter().enumerate() {
                membership.insert(rid.index());
                row_slots[rid.index()] = (gi as u32, pos as u32);
            }
            key_index.insert(key.clone(), gi as u32);
            groups.push(CachedGroup { key, rows, states, arg_values, template });
        }

        let schema = output_schema(table, stmt)?;
        Ok(GroupedAggregateCache {
            table: store,
            stmt: stmt.clone(),
            schema,
            groups,
            membership,
            row_slots,
            key_index,
            agg_item_indices: agg_calls.iter().map(|(i, _)| *i).collect(),
            plain_item_indices,
        })
    }

    /// The retained groups, for the snapshot codec.
    pub(crate) fn snapshot_groups(&self) -> &[CachedGroup] {
        &self.groups
    }

    /// Reassembles a cache from persisted groups, deriving every redundant
    /// index (membership bitmap, row → slot lookup, key index, output
    /// schema, item-index partitions) exactly as [`Self::build_from`]
    /// would — so a restored cache is indistinguishable from a freshly
    /// built one. All cross-references are validated (row ids in bounds,
    /// state slots aligned with the statement's aggregates, unique group
    /// keys); a corrupted snapshot yields an error, never a panic.
    pub(crate) fn from_snapshot(
        table: Arc<Table>,
        stmt: SelectStatement,
        groups: Vec<CachedGroup>,
    ) -> Result<GroupedAggregateCache<'static>, EngineError> {
        let store = TableStore::Shared(table);
        {
            let table: &Table = &store;
            validate(table, &stmt)?;
        }
        let agg_calls: Vec<(usize, &AggregateCall)> = stmt
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match &item.expr {
                SelectExpr::Aggregate(call) => Some((i, call)),
                _ => None,
            })
            .collect();
        let plain_item_indices: Vec<usize> = stmt
            .items
            .iter()
            .enumerate()
            .filter(|(_, item)| !matches!(item.expr, SelectExpr::Aggregate(_)))
            .map(|(i, _)| i)
            .collect();

        let num_rows = store.num_rows();
        let corrupt = |msg: String| EngineError::plan(format!("cache snapshot invalid: {msg}"));
        if groups.len() > u32::MAX as usize {
            return Err(corrupt(format!("{} groups overflow the group index", groups.len())));
        }
        let mut membership = RowSet::empty(num_rows);
        let mut row_slots = vec![(0u32, 0u32); num_rows];
        let mut key_index = HashMap::with_capacity(groups.len());
        for (gi, group) in groups.iter().enumerate() {
            if group.states.len() != agg_calls.len() || group.arg_values.len() != agg_calls.len() {
                return Err(corrupt(format!(
                    "group {gi} retains {} aggregate states but the statement has {}",
                    group.states.len(),
                    agg_calls.len()
                )));
            }
            for (slot, (_, call)) in agg_calls.iter().enumerate() {
                if group.states[slot].func() != call.func {
                    return Err(corrupt(format!(
                        "group {gi} state {slot} is {:?} but the statement calls {:?}",
                        group.states[slot].func(),
                        call.func
                    )));
                }
                if group.arg_values[slot].len() != group.rows.len() {
                    return Err(corrupt(format!(
                        "group {gi} slot {slot} has {} argument values for {} rows",
                        group.arg_values[slot].len(),
                        group.rows.len()
                    )));
                }
            }
            if group.template.len() != stmt.items.len() {
                return Err(corrupt(format!(
                    "group {gi} template has {} items but the statement selects {}",
                    group.template.len(),
                    stmt.items.len()
                )));
            }
            if group.rows.len() > u32::MAX as usize {
                return Err(corrupt(format!("group {gi} row list overflows the slot index")));
            }
            for (pos, &rid) in group.rows.iter().enumerate() {
                if rid.index() >= num_rows {
                    return Err(corrupt(format!(
                        "group {gi} references row {rid} but the table has {num_rows} rows"
                    )));
                }
                membership.insert(rid.index());
                row_slots[rid.index()] = (gi as u32, pos as u32);
            }
            if key_index.insert(group.key.clone(), gi as u32).is_some() {
                return Err(corrupt(format!("group {gi} duplicates another group's key")));
            }
        }
        let schema = {
            let table: &Table = &store;
            output_schema(table, &stmt)?
        };
        let agg_item_indices: Vec<usize> = agg_calls.iter().map(|(i, _)| *i).collect();
        Ok(GroupedAggregateCache {
            table: store,
            stmt,
            schema,
            groups,
            membership,
            row_slots,
            key_index,
            agg_item_indices,
            plain_item_indices,
        })
    }

    /// Absorbs the rows appended to the table since this cache was built,
    /// without touching any retained state for pre-existing rows. `table`
    /// must be an append descendant of the cache's table: same table id,
    /// same structural epoch (no deletions or restores in between), equal
    /// or newer appended epoch. Appended rows are filtered, grouped and
    /// folded into the retained aggregate states exactly as a fresh
    /// [`GroupedAggregateCache::build`] over the grown table would —
    /// insertion is exact for every aggregate including MIN/MAX (only
    /// *removal* needs their rescan fallback) — so an absorbed cache is
    /// indistinguishable from a rebuilt one: same groups in the same
    /// first-seen order (new groups append after all old ones), same
    /// states, same answers to every exclusion query. Returns the number
    /// of appended rows that passed the statement's filter.
    pub fn absorb_append(&mut self, table: &'t Table) -> Result<usize, EngineError> {
        self.absorb_from(TableStore::Borrowed(table))
    }

    /// [`GroupedAggregateCache::absorb_append`] over a shared table
    /// snapshot — the registry's shape: the cache drops its old snapshot
    /// and co-owns the grown one.
    pub fn absorb_append_shared(&mut self, table: Arc<Table>) -> Result<usize, EngineError> {
        self.absorb_from(TableStore::Shared(table))
    }

    fn absorb_from(&mut self, store: TableStore<'t>) -> Result<usize, EngineError> {
        let old_rows = self.table.num_rows();
        let absorbed;
        {
            let table: &Table = &store;
            if table.id() != self.table.id() {
                return Err(EngineError::plan(format!(
                    "cannot absorb appends from table '{}' into a cache built over '{}'",
                    table.name(),
                    self.table.name()
                )));
            }
            if !table.epoch().is_append_descendant_of(self.table.epoch()) {
                return Err(EngineError::plan(format!(
                    "table '{}' at {:?} is not an append descendant of the cached epoch {:?}",
                    table.name(),
                    table.epoch(),
                    self.table.epoch()
                )));
            }
            if table.num_rows() < old_rows {
                return Err(EngineError::plan(format!(
                    "append descendant of '{}' lost rows: {} -> {}",
                    table.name(),
                    old_rows,
                    table.num_rows()
                )));
            }
            if table.epoch() == self.table.epoch() {
                return Ok(0);
            }

            // The retained indexes must match the grown row universe even
            // when no appended row passes the filter: exclusion bitmaps
            // arrive sized to the new table.
            self.membership.grow(table.num_rows());
            self.row_slots.resize(table.num_rows(), (0u32, 0u32));

            // Filter only the appended suffix — the old region is unchanged
            // (same structural epoch), so its rows are already retained and
            // re-scanning them would make every absorb O(table). The suffix
            // scan admits exactly the rows a full vectorized filter would.
            let appended = scan_filter_suffix(table, &self.stmt, old_rows)?;
            absorbed = appended.len();
            let (new_keys, new_group_rows) = build_groups(table, &self.stmt, appended)?;

            let agg_calls: Vec<&AggregateCall> = self
                .agg_item_indices
                .iter()
                .map(|&i| match &self.stmt.items[i].expr {
                    SelectExpr::Aggregate(call) => call,
                    _ => unreachable!("agg_item_indices only holds aggregate items"),
                })
                .collect();

            let mut touched: Vec<u32> = Vec::new();
            for (key, rows) in new_keys.into_iter().zip(new_group_rows) {
                if rows.is_empty() {
                    // The implicit group of a GROUP BY-less statement when
                    // no appended row matched: nothing to fold in.
                    continue;
                }
                let gi = match self.key_index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        let gi = u32::try_from(self.groups.len()).map_err(|_| {
                            EngineError::plan("group count overflows the group index")
                        })?;
                        self.key_index.insert(key.clone(), gi);
                        self.groups.push(CachedGroup {
                            key,
                            rows: Vec::new(),
                            states: agg_calls
                                .iter()
                                .map(|call| AggregateState::new(call.func))
                                .collect(),
                            arg_values: vec![Vec::new(); agg_calls.len()],
                            template: Vec::new(),
                        });
                        gi
                    }
                };
                touched.push(gi);
                let group = &mut self.groups[gi as usize];
                for (slot, call) in agg_calls.iter().enumerate() {
                    let state = &mut group.states[slot];
                    let values = &mut group.arg_values[slot];
                    for_each_arg_value(table, call, &rows, |v| {
                        state.add(v);
                        values.push(v);
                    })?;
                }
                for &rid in &rows {
                    let pos = u32::try_from(group.rows.len()).map_err(|_| {
                        EngineError::plan("group row list overflows the slot index")
                    })?;
                    group.rows.push(rid);
                    self.membership.insert(rid.index());
                    self.row_slots[rid.index()] = (gi, pos);
                }
            }

            // Re-project the output row of every group that gained rows
            // (new groups included). Untouched groups keep their template:
            // their states, rows and representative first row are
            // unchanged.
            touched.sort_unstable();
            touched.dedup();
            for gi in touched {
                let group = &mut self.groups[gi as usize];
                let agg_outputs: Vec<Value> = group.states.iter().map(|s| s.finish()).collect();
                group.template =
                    project_row(table, &self.stmt, &group.key, &group.rows, &agg_outputs)?;
            }
        }
        self.table = store;
        Ok(absorbed)
    }

    /// The table this cache was built from.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The fingerprint identifying this cache's (statement, table data)
    /// pair — what a registry keys reuse on. Cheap: no hashing of the data
    /// itself, just the statement's SQL rendering plus the table's identity
    /// and version stamps.
    pub fn fingerprint(&self) -> CacheFingerprint {
        CacheFingerprint::of(&self.table, &self.stmt)
    }

    /// The statement this cache answers for.
    pub fn statement(&self) -> &SelectStatement {
        &self.stmt
    }

    /// Number of retained groups (before any exclusion).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of input rows retained (the rows that passed the WHERE
    /// clause).
    pub fn num_rows(&self) -> usize {
        self.membership.count_ones()
    }

    /// True when `row` passed the statement's filter and contributes to some
    /// group.
    pub fn contains(&self, row: RowId) -> bool {
        self.membership.contains_row(row)
    }

    /// Bitmap of the input rows retained by the cache (the rows that passed
    /// the WHERE clause), over the table's physical rows. Candidate
    /// exclusion sets are intersections against this mask.
    pub fn membership(&self) -> &RowSet {
        &self.membership
    }

    /// The index of the group whose GROUP BY key is `key` (first-seen
    /// order, not output order).
    pub fn find_group(&self, key: &[Value]) -> Option<usize> {
        self.key_index.get(key).map(|&gi| gi as usize)
    }

    /// The input rows of group `g`, in scan order.
    pub fn group_rows(&self, g: usize) -> &[RowId] {
        &self.groups[g].rows
    }

    /// The retained state of the aggregate at SELECT-list index `item` in
    /// group `g`, or `None` when `item` is not an aggregate item.
    pub fn state(&self, g: usize, item: usize) -> Option<&AggregateState> {
        let slot = self.agg_item_indices.iter().position(|&i| i == item)?;
        Some(&self.groups[g].states[slot])
    }

    /// The argument values the aggregate at SELECT-list index `item`
    /// consumed in group `g`, aligned with [`Self::group_rows`].
    pub fn arg_values(&self, g: usize, item: usize) -> Option<&[Option<f64>]> {
        let slot = self.agg_item_indices.iter().position(|&i| i == item)?;
        Some(&self.groups[g].arg_values[slot])
    }

    /// The result of the statement with no rows excluded (lineage-free).
    pub fn full_result(&self) -> QueryResult {
        self.result(&ExclusionQuery::new())
    }

    /// [`GroupedAggregateCache::full_result`] with fine-grained lineage:
    /// every output group records exactly the input rows the executor
    /// would have recorded, so the result is indistinguishable from
    /// [`crate::execute`] on the same table (timing aside). This is the
    /// streaming-append refresh path: a session whose table only gained
    /// rows replaces its displayed result from the absorbed cache instead
    /// of re-executing, and downstream lineage consumers (the influence
    /// preprocessor's fallback) keep working.
    pub fn full_result_with_lineage(&self) -> QueryResult {
        let start = Instant::now();
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(self.groups.len());
        let mut keys: Vec<Vec<Value>> = Vec::with_capacity(self.groups.len());
        for group in &self.groups {
            rows.push(group.template.clone());
            keys.push(group.key.clone());
        }
        let order = output_order(&self.stmt, &rows, &keys).expect("validated at build time");
        let mut final_rows = Vec::with_capacity(order.len());
        let mut final_keys = Vec::with_capacity(order.len());
        let mut lineage = Lineage::new(self.table.name());
        for &i in &order {
            final_rows.push(std::mem::take(&mut rows[i]));
            final_keys.push(std::mem::take(&mut keys[i]));
            let g = lineage.add_group();
            lineage.record_all(g, self.groups[i].rows.iter().copied());
        }
        let mut result = self.finish_result(final_rows, final_keys, start);
        result.lineage = lineage;
        result
    }

    /// The single exclusion-query entry point: the exact result the
    /// statement would produce if the query's excluded rows were deleted
    /// from the table. Touched groups subtract the excluded tuples'
    /// contributions via [`AggregateState::remove`] (falling back to an
    /// in-order rebuild for MIN/MAX), untouched groups reuse their cached
    /// output row verbatim. Excluded rows that did not pass the filter (or
    /// appear multiple times) are ignored.
    ///
    /// With [`ExclusionQuery::for_keys`], the result is restricted to the
    /// groups whose GROUP BY key appears in the requested set — without
    /// materialising (cloning, re-aggregating or sorting) any other group.
    /// That is the Predicate Ranker's shape of question: a brush selects a
    /// handful of suspicious groups, and every candidate predicate only
    /// needs ε re-evaluated over *those* groups. The by-key result
    /// contains one row per distinct requested key that (still) exists
    /// after the exclusion, in the cache's first-seen group order — ORDER
    /// BY is not applied, since rows are identified by their group key. A
    /// statement with LIMIT falls back internally to the full path (which
    /// groups survive the limit depends on every other group) and then
    /// filters, so results remain exact.
    pub fn result(&self, q: &ExclusionQuery<'_>) -> QueryResult {
        let start = Instant::now();
        match q.keys {
            None => {
                let touched = self.touched_of(q.excluded, None);
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(self.groups.len());
                let mut keys: Vec<Vec<Value>> = Vec::with_capacity(self.groups.len());
                for (gi, group) in self.groups.iter().enumerate() {
                    let Some(row) = self.cleaned_group_row(group, touched.get(&(gi as u32))) else {
                        continue;
                    };
                    rows.push(row);
                    keys.push(group.key.clone());
                }
                let order =
                    output_order(&self.stmt, &rows, &keys).expect("validated at build time");
                let mut final_rows = Vec::with_capacity(order.len());
                let mut final_keys = Vec::with_capacity(order.len());
                for &i in &order {
                    final_rows.push(std::mem::take(&mut rows[i]));
                    final_keys.push(std::mem::take(&mut keys[i]));
                }
                self.finish_result(final_rows, final_keys, start)
            }
            Some(keys) => {
                if self.stmt.limit.is_some() {
                    return self.limited_keys_result(q.excluded, keys);
                }
                let (wanted, wanted_set) = self.resolve_wanted(keys);
                let touched = self.touched_of(q.excluded, Some(&wanted_set));
                self.keys_result(&wanted, &touched, start)
            }
        }
    }

    /// Excluded positions per touched group for whichever selector shape
    /// the query carries — bitmap bits are consumed directly (no
    /// `Vec<RowId>` materialised on the un-LIMITed path).
    fn touched_of(
        &self,
        excluded: Excluded<'_>,
        wanted: Option<&HashSet<u32>>,
    ) -> HashMap<u32, Vec<u32>> {
        match excluded {
            Excluded::None => HashMap::new(),
            Excluded::Rows(rows) => self.touched_positions(rows, wanted),
            Excluded::Set(set) => self.touched_positions_of(set.iter(), wanted),
        }
    }

    /// The LIMIT fallback of the by-key paths: which groups survive the
    /// limit depends on every other group, so compute the full result and
    /// filter it down to the requested keys.
    fn limited_keys_result(&self, excluded: Excluded<'_>, keys: &[Vec<Value>]) -> QueryResult {
        let wanted: HashSet<&[Value]> = keys.iter().map(|k| k.as_slice()).collect();
        let full = self.result(&ExclusionQuery { excluded, keys: None });
        let start = Instant::now();
        let mut rows = Vec::new();
        let mut out_keys = Vec::new();
        for (row, key) in full.rows.into_iter().zip(full.group_keys) {
            if wanted.contains(key.as_slice()) {
                rows.push(row);
                out_keys.push(key);
            }
        }
        self.finish_result(rows, out_keys, start)
    }

    /// Resolves the requested keys through the key index — O(|keys|), not
    /// a scan over every cached group — in first-seen group order. Unknown
    /// keys resolve to nothing; duplicates collapse.
    fn resolve_wanted(&self, keys: &[Vec<Value>]) -> (Vec<u32>, HashSet<u32>) {
        let mut wanted: Vec<u32> =
            keys.iter().filter_map(|k| self.key_index.get(k.as_slice()).copied()).collect();
        wanted.sort_unstable();
        wanted.dedup();
        let wanted_set: HashSet<u32> = wanted.iter().copied().collect();
        (wanted, wanted_set)
    }

    /// Materializes the by-key answer for the resolved groups.
    fn keys_result(
        &self,
        wanted: &[u32],
        touched: &HashMap<u32, Vec<u32>>,
        start: Instant,
    ) -> QueryResult {
        let mut rows = Vec::with_capacity(wanted.len());
        let mut out_keys = Vec::with_capacity(wanted.len());
        for &gi in wanted {
            let group = &self.groups[gi as usize];
            let Some(row) = self.cleaned_group_row(group, touched.get(&gi)) else {
                continue;
            };
            rows.push(row);
            out_keys.push(group.key.clone());
        }
        self.finish_result(rows, out_keys, start)
    }

    /// Excluded positions per touched group, sorted and deduplicated.
    /// Restricted to the group indices in `wanted` when given (rows
    /// outside those groups cannot affect the answer, so indexing them is
    /// wasted work).
    fn touched_positions(
        &self,
        excluded: &[RowId],
        wanted: Option<&HashSet<u32>>,
    ) -> HashMap<u32, Vec<u32>> {
        self.touched_positions_of(excluded.iter().map(|r| r.index()), wanted)
    }

    /// [`GroupedAggregateCache::touched_positions`] over raw row indices.
    fn touched_positions_of(
        &self,
        excluded: impl Iterator<Item = usize>,
        wanted: Option<&HashSet<u32>>,
    ) -> HashMap<u32, Vec<u32>> {
        let mut touched: HashMap<u32, Vec<u32>> = HashMap::new();
        for row in excluded {
            if self.membership.contains(row) {
                let (g, pos) = self.row_slots[row];
                if let Some(wanted) = wanted {
                    if !wanted.contains(&g) {
                        continue;
                    }
                }
                touched.entry(g).or_default().push(pos);
            }
        }
        for positions in touched.values_mut() {
            positions.sort_unstable();
            positions.dedup();
        }
        touched
    }

    /// One group's output row after excluding `positions`, or `None` when
    /// the group disappears (every contributing row excluded, under GROUP
    /// BY) — the single place encoding the exclusion semantics for both the
    /// full and the by-key paths.
    fn cleaned_group_row(
        &self,
        group: &CachedGroup,
        positions: Option<&Vec<u32>>,
    ) -> Option<Vec<Value>> {
        let Some(positions) = positions else {
            return Some(group.template.clone());
        };
        let has_group_by = !self.stmt.group_by.is_empty();
        let remaining = group.rows.len() - positions.len();
        if remaining == 0 && has_group_by {
            // Every contributing row is excluded: the group disappears,
            // exactly as under full re-execution.
            return None;
        }
        let mut row = group.template.clone();
        for (slot, &item) in self.agg_item_indices.iter().enumerate() {
            row[item] = self.reaggregate(group, slot, positions).finish();
        }
        if remaining == 0 {
            // The implicit group of a GROUP BY-less query: scalar items
            // lose their representative row and become NULL, matching the
            // executor on an empty input.
            for &item in &self.plain_item_indices {
                row[item] = Value::Null;
            }
        }
        Some(row)
    }

    /// Wraps computed rows into a lineage-free [`QueryResult`].
    fn finish_result(
        &self,
        rows: Vec<Vec<Value>>,
        keys: Vec<Vec<Value>>,
        start: Instant,
    ) -> QueryResult {
        let mut lineage = Lineage::new(self.table.name());
        for _ in &rows {
            lineage.add_group();
        }
        let mut graph = OperatorGraph::new();
        graph.push(
            OperatorKind::Aggregate {
                aggregates: self.stmt.aggregates().iter().map(|a| a.to_string()).collect(),
            },
            rows.len(),
        );

        QueryResult {
            statement: self.stmt.clone(),
            schema: self.schema.clone(),
            rows,
            group_keys: keys,
            lineage,
            graph,
            execution_nanos: start.elapsed().as_nanos(),
        }
    }

    /// The GROUP BY key of group `g` (first-seen order).
    pub(crate) fn group_key(&self, g: usize) -> &[Value] {
        &self.groups[g].key
    }

    /// The cached (no-exclusion) output row of group `g`.
    pub(crate) fn group_template(&self, g: usize) -> &[Value] {
        &self.groups[g].template
    }

    /// The full (no-exclusion) aggregate states of group `g`, one per
    /// aggregate SELECT item in slot order.
    pub(crate) fn full_states(&self, g: usize) -> &[AggregateState] {
        &self.groups[g].states
    }

    /// SELECT-list indices of the aggregate items (slot order).
    pub(crate) fn agg_items(&self) -> &[usize] {
        &self.agg_item_indices
    }

    /// SELECT-list indices of the non-aggregate items.
    pub(crate) fn plain_items(&self) -> &[usize] {
        &self.plain_item_indices
    }

    /// The output schema computed at build time.
    pub(crate) fn out_schema(&self) -> &Schema {
        &self.schema
    }

    /// [`GroupedAggregateCache::touched_positions`] over a bitmap — the
    /// sharded merge layer's entry point for mapping a per-shard exclusion
    /// set to per-group excluded positions.
    pub(crate) fn exclusion_positions(
        &self,
        excluded: &RowSet,
        wanted: Option<&HashSet<u32>>,
    ) -> HashMap<u32, Vec<u32>> {
        self.touched_positions_of(excluded.iter(), wanted)
    }

    /// The per-slot aggregate states of group `g` after excluding the rows
    /// at `positions` (sorted, deduplicated) — the state-level counterpart
    /// of [`GroupedAggregateCache::result`] over an [`ExclusionQuery`],
    /// exposed so partial shard states can be merged *before* finishing.
    pub(crate) fn states_excluding(&self, g: usize, positions: &[u32]) -> Vec<AggregateState> {
        let group = &self.groups[g];
        (0..group.states.len()).map(|slot| self.reaggregate(group, slot, positions)).collect()
    }

    /// One aggregate's state for a touched group: subtract the excluded
    /// contributions when the state supports removal, otherwise rebuild from
    /// the retained argument values in original order (the MIN/MAX
    /// fallback). `positions` must be sorted and deduplicated.
    fn reaggregate(&self, group: &CachedGroup, slot: usize, positions: &[u32]) -> AggregateState {
        let values = &group.arg_values[slot];
        let mut state = group.states[slot].clone();
        let removable = positions.iter().all(|&p| state.remove(values[p as usize]));
        if removable {
            return state;
        }
        let mut state = AggregateState::new(group.states[slot].func());
        let mut skip = positions.iter().peekable();
        for (pos, v) in values.iter().enumerate() {
            if skip.peek().is_some_and(|&&p| p as usize == pos) {
                skip.next();
            } else {
                state.add(*v);
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute, ExecOptions};
    use crate::parser::parse_select;
    use dbwipes_storage::{DataType, Schema};

    fn readings() -> Table {
        let schema = Schema::of(&[
            ("hour", DataType::Int),
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(0), Value::Int(1), Value::Float(20.0)],
            vec![Value::Int(0), Value::Int(2), Value::Float(22.0)],
            vec![Value::Int(1), Value::Int(1), Value::Float(21.0)],
            vec![Value::Int(1), Value::Int(3), Value::Float(120.0)],
            vec![Value::Int(1), Value::Int(2), Value::Null],
        ])
        .unwrap();
        t
    }

    /// Full re-execution with the rows physically deleted — the ground
    /// truth an exclusion query must reproduce.
    fn reference(table: &Table, stmt: &SelectStatement, excluded: &[RowId]) -> QueryResult {
        let mut t = table.clone();
        for &r in excluded {
            t.delete_row(r).unwrap();
        }
        execute(&t, stmt, ExecOptions { capture_lineage: false }).unwrap()
    }

    fn check(sql: &str, excluded: &[RowId]) {
        let table = readings();
        let stmt = parse_select(sql).unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let incremental = cache.result(&ExclusionQuery::new().excluding_rows(excluded));
        let full = reference(&table, &stmt, excluded);
        assert_eq!(incremental.rows, full.rows, "{sql} excluding {excluded:?}");
        assert_eq!(incremental.group_keys, full.group_keys, "{sql}");
        assert_eq!(incremental.schema.names(), full.schema.names(), "{sql}");
    }

    #[test]
    fn no_exclusion_matches_plain_execution() {
        let table = readings();
        let stmt =
            parse_select("SELECT hour, avg(temp), count(*) FROM readings GROUP BY hour").unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let full = execute(&table, &stmt, ExecOptions { capture_lineage: false }).unwrap();
        assert_eq!(cache.full_result().rows, full.rows);
        assert_eq!(cache.num_groups(), 2);
        assert_eq!(cache.num_rows(), 5);
        assert!(cache.contains(RowId(0)));
        assert_eq!(cache.statement(), &stmt);
    }

    #[test]
    fn removable_aggregates_subtract_exactly() {
        check(
            "SELECT hour, avg(temp), sum(temp), count(*), count(temp) FROM readings GROUP BY hour",
            &[RowId(3)],
        );
        check("SELECT hour, stddev(temp), variance(temp) FROM readings GROUP BY hour", &[RowId(3)]);
    }

    #[test]
    fn min_max_fall_back_to_rescan() {
        // Removing the maximum forces the fallback.
        check("SELECT hour, min(temp), max(temp) FROM readings GROUP BY hour", &[RowId(3)]);
        // Removing only a NULL contribution succeeds without the fallback.
        check("SELECT hour, min(temp), max(temp) FROM readings GROUP BY hour", &[RowId(4)]);
    }

    #[test]
    fn fully_excluded_groups_disappear() {
        check("SELECT hour, avg(temp) FROM readings GROUP BY hour", &[RowId(0), RowId(1)]);
    }

    #[test]
    fn implicit_group_survives_total_exclusion() {
        check(
            "SELECT avg(temp), count(*), min(temp) FROM readings",
            &[RowId(0), RowId(1), RowId(2), RowId(3), RowId(4)],
        );
    }

    #[test]
    fn where_clause_rows_outside_filter_are_ignored() {
        // Row 3 (sensorid = 3) is filtered out, so excluding it is a no-op.
        check(
            "SELECT hour, avg(temp) FROM readings WHERE sensorid <> 3 GROUP BY hour",
            &[RowId(3)],
        );
    }

    #[test]
    fn order_by_and_limit_are_reapplied_after_exclusion() {
        check(
            "SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC LIMIT 1",
            &[RowId(3)],
        );
    }

    #[test]
    fn duplicate_exclusions_count_once() {
        check("SELECT hour, sum(temp) FROM readings GROUP BY hour", &[RowId(0), RowId(0)]);
    }

    #[test]
    fn accessors_expose_states_and_arg_values() {
        let table = readings();
        let stmt = parse_select("SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let g = cache.find_group(&[Value::Int(1)]).unwrap();
        assert_eq!(cache.group_rows(g), &[RowId(2), RowId(3), RowId(4)]);
        assert_eq!(cache.arg_values(g, 1).unwrap(), &[Some(21.0), Some(120.0), None]);
        assert_eq!(cache.state(g, 1).unwrap().finish(), Value::Float(70.5));
        // Item 0 is the group key, not an aggregate.
        assert!(cache.state(g, 0).is_none());
        assert!(cache.arg_values(g, 0).is_none());
        assert!(cache.find_group(&[Value::Int(9)]).is_none());
    }

    /// The by-key path must agree row-for-row with filtering the
    /// full result down to the requested keys (ignoring row order, which
    /// the by-key path does not promise).
    fn check_keys(sql: &str, excluded: &[RowId], keys: &[Vec<Value>]) {
        let table = readings();
        let stmt = parse_select(sql).unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let partial = cache.result(&ExclusionQuery::new().excluding_rows(excluded).for_keys(keys));
        let full = cache.result(&ExclusionQuery::new().excluding_rows(excluded));
        let mut expected: Vec<(&Vec<Value>, &Vec<Value>)> =
            full.group_keys.iter().zip(&full.rows).filter(|(k, _)| keys.contains(k)).collect();
        let mut got: Vec<(&Vec<Value>, &Vec<Value>)> =
            partial.group_keys.iter().zip(&partial.rows).collect();
        expected.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        got.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        assert_eq!(got, expected, "{sql} excluding {excluded:?} keys {keys:?}");
    }

    #[test]
    fn excluding_keys_matches_filtered_full_result() {
        let all_keys = vec![vec![Value::Int(0)], vec![Value::Int(1)]];
        let hour1 = vec![vec![Value::Int(1)]];
        for excluded in [&[][..], &[RowId(3)][..], &[RowId(2), RowId(3), RowId(4)][..]] {
            check_keys(
                "SELECT hour, avg(temp), count(*) FROM readings GROUP BY hour",
                excluded,
                &all_keys,
            );
            check_keys(
                "SELECT hour, min(temp), max(temp) FROM readings GROUP BY hour",
                excluded,
                &hour1,
            );
            // Keys that never existed are simply absent from the answer.
            check_keys(
                "SELECT hour, sum(temp) FROM readings GROUP BY hour",
                excluded,
                &[vec![Value::Int(1)], vec![Value::Int(42)]],
            );
        }
        // ORDER BY without LIMIT stays on the fast path (order is irrelevant
        // to the by-key contract); LIMIT falls back to the full path.
        check_keys(
            "SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC",
            &[RowId(3)],
            &all_keys,
        );
        check_keys(
            "SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC LIMIT 1",
            &[RowId(3)],
            &all_keys,
        );
        // A fully excluded group disappears from the by-key answer too.
        check_keys(
            "SELECT hour, avg(temp) FROM readings GROUP BY hour",
            &[RowId(0), RowId(1)],
            &[vec![Value::Int(0)]],
        );
    }

    #[test]
    fn excluding_keys_set_matches_row_list_path() {
        let table = readings();
        let all_keys = vec![vec![Value::Int(0)], vec![Value::Int(1)]];
        for sql in [
            "SELECT hour, avg(temp), count(*) FROM readings GROUP BY hour",
            "SELECT hour, min(temp), max(temp) FROM readings GROUP BY hour",
            // LIMIT exercises the full-path fallback of the set variant.
            "SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC LIMIT 1",
        ] {
            let stmt = parse_select(sql).unwrap();
            let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
            for excluded in [&[][..], &[RowId(3)][..], &[RowId(0), RowId(1), RowId(4)][..]] {
                let as_set = RowSet::from_rows(table.num_rows(), excluded.iter());
                let via_set =
                    cache.result(&ExclusionQuery::new().excluding_set(&as_set).for_keys(&all_keys));
                let via_list = cache
                    .result(&ExclusionQuery::new().excluding_rows(excluded).for_keys(&all_keys));
                assert_eq!(via_set.rows, via_list.rows, "{sql} excluding {excluded:?}");
                assert_eq!(via_set.group_keys, via_list.group_keys, "{sql}");
            }
        }
    }

    #[test]
    fn membership_bitmap_mirrors_contains() {
        let table = readings();
        let stmt =
            parse_select("SELECT hour, avg(temp) FROM readings WHERE sensorid <> 3 GROUP BY hour")
                .unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let membership = cache.membership();
        assert_eq!(membership.universe(), table.num_rows());
        assert_eq!(membership.count_ones(), cache.num_rows());
        for rid in table.all_row_ids() {
            assert_eq!(membership.contains_row(rid), cache.contains(rid), "{rid}");
        }
        // Row 3 (sensorid = 3) is filtered out.
        assert!(!membership.contains(3));
        assert!(membership.contains(0));
    }

    #[test]
    fn excluding_keys_touches_only_requested_groups() {
        let table = readings();
        let stmt = parse_select("SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();
        // Excluded rows live in hour 0, but only hour 1 is requested: the
        // answer is hour 1's untouched template row.
        let excluded = [RowId(0), RowId(1)];
        let keys = [vec![Value::Int(1)]];
        let partial =
            cache.result(&ExclusionQuery::new().excluding_rows(&excluded).for_keys(&keys));
        assert_eq!(partial.len(), 1);
        assert_eq!(partial.group_keys[0], vec![Value::Int(1)]);
        assert_eq!(partial.rows[0], cache.full_result().rows[1]);
        // Empty key set → empty result, regardless of exclusions.
        assert!(cache
            .result(&ExclusionQuery::new().excluding_rows(&excluded[..1]).for_keys(&[]))
            .is_empty());
    }

    #[test]
    fn shared_build_matches_borrowed_build_and_fingerprints() {
        let table = readings();
        let stmt = parse_select("SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let borrowed = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let arc = std::sync::Arc::new(table.clone());
        // The shared cache has no borrowed lifetime: it can outlive every
        // reference to the table it was built from.
        let shared: GroupedAggregateCache<'static> =
            GroupedAggregateCache::build_shared(arc.clone(), &stmt).unwrap();
        let q = ExclusionQuery::new().excluding_rows(&[RowId(3)]);
        assert_eq!(shared.result(&q).rows, borrowed.result(&q).rows);
        assert_eq!(shared.fingerprint(), borrowed.fingerprint());
        assert_eq!(shared.table().id(), table.id());

        let fp = shared.fingerprint();
        assert_eq!(fp.table_name, "readings");
        assert_eq!(fp.table_id, table.id());
        assert_eq!(fp.epoch, table.epoch());
        // Equivalent SQL spellings (whitespace, keyword case) canonicalise
        // to the same fingerprint...
        let respelled =
            parse_select("select  hour,  AVG( temp )\nfrom readings group by hour").unwrap();
        assert_eq!(CacheFingerprint::of(&table, &respelled), fp);
        // ...while mutating the data changes it.
        let mut mutated = table.clone();
        mutated.delete_row(RowId(0)).unwrap();
        let fp2 = CacheFingerprint::of(&mutated, &stmt);
        assert_eq!(fp2.table_id, fp.table_id);
        assert_ne!(fp2, fp);
    }

    #[test]
    fn build_rejects_invalid_statements() {
        let table = readings();
        let stmt = parse_select("SELECT sensorid, avg(temp) FROM readings GROUP BY hour").unwrap();
        assert!(GroupedAggregateCache::build(&table, &stmt).is_err());
    }

    /// Appended rows touching an old group, creating a new group, and
    /// (partly) failing the WHERE clause — the absorbed cache must be
    /// indistinguishable from a fresh build over the grown table.
    fn check_absorb(sql: &str, appended: &[(i64, i64, Value)]) {
        let mut table = readings();
        let stmt = parse_select(sql).unwrap();
        // Build over a snapshot of the pre-append data — the shape every
        // real caller has (COW catalogs and Arc snapshots), since a
        // borrowed table cannot be mutated while the cache holds it.
        let snapshot = table.clone();
        let mut cache = GroupedAggregateCache::build(&snapshot, &stmt).unwrap();
        table
            .push_rows(
                appended
                    .iter()
                    .map(|(s, h, v)| vec![Value::Int(*s), Value::Int(*h), v.clone()])
                    .collect(),
            )
            .unwrap();
        cache.absorb_append(&table).unwrap();
        let fresh = GroupedAggregateCache::build(&table, &stmt).unwrap();

        assert_eq!(cache.fingerprint(), fresh.fingerprint(), "{sql}");
        assert_eq!(cache.num_groups(), fresh.num_groups(), "{sql}");
        assert_eq!(cache.num_rows(), fresh.num_rows(), "{sql}");
        let full_a = cache.full_result();
        let full_b = fresh.full_result();
        assert_eq!(full_a.rows, full_b.rows, "{sql}");
        assert_eq!(full_a.group_keys, full_b.group_keys, "{sql}");
        // Exclusion queries over old rows, new rows and both agree too.
        let n = table.num_rows();
        for excluded in [vec![RowId(0)], vec![RowId(n - 1)], vec![RowId(1), RowId(n - 2)]] {
            let q = ExclusionQuery::new().excluding_rows(&excluded);
            assert_eq!(cache.result(&q).rows, fresh.result(&q).rows, "{sql} {excluded:?}");
        }
    }

    #[test]
    fn absorb_append_is_indistinguishable_from_a_fresh_build() {
        let appended: &[(i64, i64, Value)] = &[
            (1, 0, Value::Float(99.0)),  // old group, new maximum
            (2, 7, Value::Float(-40.0)), // brand-new group
            (3, 1, Value::Float(55.0)),  // filtered out under sensorid <> 3
            (1, 7, Value::Null),         // NULL contribution to the new group
        ];
        check_absorb(
            "SELECT hour, avg(temp), sum(temp), count(*), count(temp) FROM readings \
             GROUP BY hour",
            appended,
        );
        check_absorb("SELECT hour, min(temp), max(temp) FROM readings GROUP BY hour", appended);
        check_absorb("SELECT avg(temp), min(temp), max(temp), count(*) FROM readings", appended);
        check_absorb(
            "SELECT hour, avg(temp) FROM readings WHERE sensorid <> 3 GROUP BY hour",
            appended,
        );
        check_absorb(
            "SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC LIMIT 2",
            appended,
        );
    }

    #[test]
    fn absorb_append_batches_compose() {
        // Absorbing twice (batch by batch) equals absorbing once.
        let mut table = readings();
        let stmt =
            parse_select("SELECT hour, sum(temp), max(temp) FROM readings GROUP BY hour").unwrap();
        let mut cache =
            GroupedAggregateCache::build_shared(Arc::new(table.clone()), &stmt).unwrap();
        table.push_row(vec![Value::Int(1), Value::Int(0), Value::Float(1.5)]).unwrap();
        assert_eq!(cache.absorb_append_shared(Arc::new(table.clone())).unwrap(), 1);
        table.push_row(vec![Value::Int(2), Value::Int(9), Value::Float(-3.0)]).unwrap();
        assert_eq!(cache.absorb_append_shared(Arc::new(table.clone())).unwrap(), 1);
        // Re-absorbing at the same epoch is a no-op.
        assert_eq!(cache.absorb_append_shared(Arc::new(table.clone())).unwrap(), 0);
        let fresh = GroupedAggregateCache::build(&table, &stmt).unwrap();
        assert_eq!(cache.full_result().rows, fresh.full_result().rows);
        assert_eq!(cache.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn absorb_append_rejects_structural_descendants_and_foreign_tables() {
        let mut table = readings();
        let stmt = parse_select("SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let snapshot = table.clone();
        let mut cache = GroupedAggregateCache::build(&snapshot, &stmt).unwrap();
        // A deletion bumps the structural epoch: not an append descendant.
        table.delete_row(RowId(0)).unwrap();
        assert!(cache.absorb_append(&table).is_err());
        // A different table entirely (fresh id) is rejected outright.
        let other = readings();
        assert!(cache.absorb_append(&other).is_err());
    }

    #[test]
    fn full_result_with_lineage_matches_execution() {
        let mut table = readings();
        let stmt =
            parse_select("SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC")
                .unwrap();
        let snapshot = table.clone();
        let mut cache = GroupedAggregateCache::build(&snapshot, &stmt).unwrap();
        table.push_row(vec![Value::Int(2), Value::Int(7), Value::Float(80.0)]).unwrap();
        cache.absorb_append(&table).unwrap();
        let got = cache.full_result_with_lineage();
        let want = execute(&table, &stmt, ExecOptions { capture_lineage: true }).unwrap();
        assert_eq!(got.rows, want.rows);
        assert_eq!(got.group_keys, want.group_keys);
        for s in 0..want.len() {
            assert_eq!(got.inputs_of(s), want.inputs_of(s), "group {s}");
        }
    }
}

//! Recursive-descent parser for the DBWipes SQL subset.
//!
//! The grammar covers exactly the query shape the paper's §2.1 problem
//! statement assumes: a single-block aggregate SELECT with WHERE, GROUP BY,
//! ORDER BY and LIMIT. Scalar expressions support the operators the ranked
//! predicates use (`=`, `<>`, `<`, `<=`, `>`, `>=`, `BETWEEN`, `IN`,
//! `LIKE '%...%'`, `IS [NOT] NULL`, boolean connectives, arithmetic).

use crate::ast::{
    AggregateArg, AggregateCall, AggregateFunc, OrderBy, SelectExpr, SelectItem, SelectStatement,
    SortOrder,
};
use crate::error::EngineError;
use crate::lexer::{tokenize, Token, TokenKind};
use dbwipes_storage::{Expr, Value};
use std::ops::{Add as _, Div as _, Mul as _, Neg as _, Not as _, Sub as _};

/// Parses a single SELECT statement.
pub fn parse_select(sql: &str) -> Result<SelectStatement, EngineError> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_select()?;
    p.skip_semicolons();
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a standalone scalar/boolean expression (used by the dashboard to
/// accept hand-written filters and by tests).
pub fn parse_expr(text: &str) -> Result<Expr, EngineError> {
    let mut p = Parser::new(text)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, EngineError> {
        Ok(Parser { tokens: tokenize(input)?, pos: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EngineError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(EngineError::parse(format!("expected keyword {kw}"), self.position()))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), EngineError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(EngineError::parse(format!("expected {what}"), self.position()))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, EngineError> {
        match self.peek().clone() {
            TokenKind::Ident(name) if !is_reserved(&name) => {
                self.advance();
                Ok(name)
            }
            _ => Err(EngineError::parse(format!("expected {what}"), self.position())),
        }
    }

    fn skip_semicolons(&mut self) {
        while self.eat(&TokenKind::Semicolon) {}
    }

    fn expect_eof(&mut self) -> Result<(), EngineError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(EngineError::parse("unexpected trailing input", self.position()))
        }
    }

    fn parse_select(&mut self) -> Result<SelectStatement, EngineError> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let table = self.expect_ident("table name")?;

        let where_clause = if self.eat_keyword("WHERE") { Some(self.parse_expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expect_ident("group-by column")?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expect_ident("group-by column")?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let target = match self.peek().clone() {
                    TokenKind::Int(n) => {
                        self.advance();
                        n.to_string()
                    }
                    _ => self.expect_ident("order-by column")?,
                };
                let order = if self.eat_keyword("DESC") {
                    SortOrder::Desc
                } else {
                    let _ = self.eat_keyword("ASC");
                    SortOrder::Asc
                };
                order_by.push(OrderBy { target, order });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                _ => return Err(EngineError::parse("expected LIMIT count", self.position())),
            }
        } else {
            None
        };

        Ok(SelectStatement { items, table, where_clause, group_by, order_by, limit })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, EngineError> {
        // Aggregate call?
        let expr = if let TokenKind::Ident(name) = self.peek().clone() {
            if AggregateFunc::from_name(&name).is_some()
                && matches!(self.peek_at(1), TokenKind::LParen)
            {
                let func = AggregateFunc::from_name(&name).expect("checked");
                self.advance(); // name
                self.advance(); // (
                let arg = if self.eat(&TokenKind::Star) {
                    AggregateArg::Star
                } else {
                    AggregateArg::Expr(self.parse_expr()?)
                };
                self.expect(TokenKind::RParen, "')' after aggregate argument")?;
                SelectExpr::Aggregate(AggregateCall { func, arg })
            } else {
                self.parse_select_scalar()?
            }
        } else {
            self.parse_select_scalar()?
        };

        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident("alias")?)
        } else {
            match self.peek().clone() {
                TokenKind::Ident(name) if !is_reserved(&name) => {
                    self.advance();
                    Some(name)
                }
                _ => None,
            }
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_select_scalar(&mut self) -> Result<SelectExpr, EngineError> {
        let e = self.parse_expr()?;
        Ok(match e {
            Expr::Column(c) => SelectExpr::Column(c),
            other => SelectExpr::Scalar(other),
        })
    }

    /// expr := or
    fn parse_expr(&mut self) -> Result<Expr, EngineError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, EngineError> {
        if self.eat_keyword("NOT") {
            Ok(self.parse_not()?.not())
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, EngineError> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(if negated { left.is_not_null() } else { left.is_null() });
        }

        // [NOT] BETWEEN / IN / LIKE / CONTAINS
        let negated = if self.peek().is_keyword("NOT")
            && (self.peek_at(1).is_keyword("BETWEEN")
                || self.peek_at(1).is_keyword("IN")
                || self.peek_at(1).is_keyword("LIKE")
                || self.peek_at(1).is_keyword("CONTAINS"))
        {
            self.advance();
            true
        } else {
            false
        };

        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            let e = left.between(low, high);
            return Ok(if negated { e.not() } else { e });
        }
        if self.eat_keyword("IN") {
            self.expect(TokenKind::LParen, "'(' after IN")?;
            let mut list = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(TokenKind::RParen, "')' after IN list")?;
            return Ok(if negated { left.not_in_list(list) } else { left.in_list(list) });
        }
        if self.eat_keyword("LIKE") || self.eat_keyword("CONTAINS") {
            let pattern = match self.advance() {
                TokenKind::Str(s) => s,
                _ => return Err(EngineError::parse("expected string pattern", self.position())),
            };
            let needle = pattern.trim_matches('%').to_string();
            let e = left.contains(needle);
            return Ok(if negated { e.not() } else { e });
        }

        let op = match self.peek() {
            TokenKind::Eq => Some(dbwipes_storage::BinaryOp::Eq),
            TokenKind::NotEq => Some(dbwipes_storage::BinaryOp::NotEq),
            TokenKind::Lt => Some(dbwipes_storage::BinaryOp::Lt),
            TokenKind::LtEq => Some(dbwipes_storage::BinaryOp::LtEq),
            TokenKind::Gt => Some(dbwipes_storage::BinaryOp::Gt),
            TokenKind::GtEq => Some(dbwipes_storage::BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                left = left.add(self.parse_multiplicative()?);
            } else if self.eat(&TokenKind::Minus) {
                left = left.sub(self.parse_multiplicative()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, EngineError> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat(&TokenKind::Star) {
                left = left.mul(self.parse_unary()?);
            } else if self.eat(&TokenKind::Slash) {
                left = left.div(self.parse_unary()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, EngineError> {
        if self.eat(&TokenKind::Minus) {
            // Fold negation of literals so `-5` is a literal, not an expression.
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
                other => other.neg(),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, EngineError> {
        let position = self.position();
        match self.advance() {
            TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if is_reserved(&name) {
                    return Err(EngineError::parse(format!("unexpected keyword {name}"), position));
                }
                if matches!(self.peek(), TokenKind::LParen) {
                    return Err(EngineError::parse(
                        format!("function calls are not allowed here: {name}(...)"),
                        position,
                    ));
                }
                Ok(Expr::Column(name))
            }
            other => Err(EngineError::parse(format!("unexpected token {other:?}"), position)),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select", "from", "where", "group", "by", "order", "limit", "and", "or", "not", "between",
        "in", "like", "contains", "is", "as", "asc", "desc",
    ];
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggregateFunc, SelectExpr};

    #[test]
    fn parses_the_intel_sensor_query() {
        let q = parse_select(
            "SELECT hour, avg(temp), stddev(temp) FROM readings WHERE temp IS NOT NULL GROUP BY hour ORDER BY hour",
        )
        .unwrap();
        assert_eq!(q.table, "readings");
        assert_eq!(q.group_by, vec!["hour".to_string()]);
        assert_eq!(q.items.len(), 3);
        assert!(matches!(q.items[0].expr, SelectExpr::Column(_)));
        assert_eq!(q.aggregates().len(), 2);
        assert_eq!(q.aggregates()[0].func, AggregateFunc::Avg);
        assert_eq!(q.aggregates()[1].func, AggregateFunc::StdDev);
        assert!(q.where_clause.is_some());
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn parses_the_fec_query_with_alias_and_limit() {
        let q = parse_select(
            "SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' GROUP BY day ORDER BY day DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q.items[1].alias.as_deref(), Some("total"));
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by[0].order, SortOrder::Desc);
        assert!(q.to_sql().contains("'McCain'"));
    }

    #[test]
    fn parses_count_star_and_bare_aliases() {
        let q =
            parse_select("SELECT candidate, count(*) n FROM donations GROUP BY candidate").unwrap();
        assert_eq!(q.items[1].alias.as_deref(), Some("n"));
        assert!(matches!(
            q.items[1].expr,
            SelectExpr::Aggregate(AggregateCall {
                func: AggregateFunc::Count,
                arg: AggregateArg::Star
            })
        ));
    }

    #[test]
    fn parses_complex_where_clauses() {
        let e = parse_expr("sensorid = 15 AND temp BETWEEN 100 AND 130 OR memo LIKE '%SPOUSE%'")
            .unwrap();
        let s = e.to_string();
        assert!(s.contains("sensorid = 15"));
        assert!(s.contains("BETWEEN 100 AND 130"));
        assert!(s.contains("LIKE '%SPOUSE%'"));

        let e = parse_expr("NOT (a IN (1, 2, 3)) AND b IS NULL").unwrap();
        assert!(e.to_string().contains("IN (1, 2, 3)"));

        let e = parse_expr("a NOT IN (1, 2)").unwrap();
        assert!(e.to_string().contains("NOT IN"));

        let e = parse_expr("amount < -100").unwrap();
        assert!(e.to_string().contains("-100"));

        let e = parse_expr("x NOT LIKE '%refund%'").unwrap();
        assert!(e.to_string().starts_with("NOT"));

        let e = parse_expr("x NOT BETWEEN 1 AND 2").unwrap();
        assert!(e.to_string().starts_with("NOT"));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3"); // rendering loses parens but tree differs
        let t = dbwipes_storage::Table::new(
            "t",
            dbwipes_storage::Schema::of(&[("x", dbwipes_storage::DataType::Int)]),
        )
        .unwrap();
        let mut t = t;
        t.push_row(vec![dbwipes_storage::Value::Int(0)]).unwrap();
        let rid = dbwipes_storage::RowId(0);
        assert_eq!(
            parse_expr("1 + 2 * 3").unwrap().eval(&t, rid).unwrap(),
            dbwipes_storage::Value::Int(7)
        );
        assert_eq!(
            parse_expr("(1 + 2) * 3").unwrap().eval(&t, rid).unwrap(),
            dbwipes_storage::Value::Int(9)
        );
        assert_eq!(
            parse_expr("true AND false OR true").unwrap().eval(&t, rid).unwrap(),
            dbwipes_storage::Value::Bool(true)
        );
        assert_eq!(
            parse_expr("NULL IS NULL").unwrap().eval(&t, rid).unwrap(),
            dbwipes_storage::Value::Bool(true)
        );
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT a b c FROM t").is_err());
        assert!(parse_select("SELECT a FROM").is_err());
        assert!(parse_select("SELECT avg(temp FROM t").is_err());
        assert!(parse_select("SELECT a FROM t GROUP BY").is_err());
        assert!(parse_select("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_select("SELECT a FROM t WHERE foo(1)").is_err());
        assert!(parse_select("SELECT a FROM t extra garbage !!!").is_err());
        assert!(parse_expr("a = ").is_err());
        assert!(parse_expr("a LIKE 5").is_err());
        assert!(parse_expr("a BETWEEN 1").is_err());
        assert!(parse_expr("WHERE").is_err());
    }

    #[test]
    fn order_by_ordinal_and_multiple_terms() {
        let q = parse_select("SELECT a, sum(x) FROM t GROUP BY a ORDER BY 2 DESC, a ASC").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].target, "2");
        assert_eq!(q.order_by[0].order, SortOrder::Desc);
        assert_eq!(q.order_by[1].order, SortOrder::Asc);
    }
}

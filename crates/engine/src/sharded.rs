//! Shard-parallel aggregate caches: one [`GroupedAggregateCache`] per
//! shard of a [`ShardedTable`], merged through the [`AggregateState`]
//! combinability discipline.
//!
//! The merge contract is the one [`AggregateState::merge`] established in
//! PR 2: every supported aggregate carries *decomposable* partial state
//! (raw sums and counts, min/max extremes, raw moments), so the state of a
//! group over the whole table equals the merge of its per-shard states.
//! A [`ShardedAggregateCache`] builds the per-shard caches concurrently
//! (one scoped thread per shard), then constructs a merged group
//! directory keyed by GROUP BY key. Determinism rules:
//!
//! * merged groups are ordered by the global index of their first
//!   contributing row — reproducing the unsharded cache's first-seen scan
//!   order exactly;
//! * per-group states merge in ascending shard order, starting from the
//!   first shard that holds the group — so results are reproducible
//!   run-to-run regardless of build-thread scheduling, and a single-shard
//!   partition is *bit-identical* to the unsharded path;
//! * exclusion queries re-derive only the touched per-shard states (the
//!   same subtract-or-rescan discipline as
//!   [`GroupedAggregateCache::result`]) and re-merge.
//!
//! With more than one shard, sums accumulate per shard before merging, so
//! float results agree with unsharded execution exactly whenever the
//! partial sums are exact (integers, counts, dyadic fractions — and
//! min/max always); otherwise they may differ in the last bits while
//! remaining deterministic.

use crate::aggregate::AggregateState;
use crate::ast::SelectStatement;
use crate::error::EngineError;
use crate::executor::output_order;
use crate::incremental::GroupedAggregateCache;
use crate::result::QueryResult;
use dbwipes_provenance::{Lineage, OperatorGraph, OperatorKind};
use dbwipes_storage::{RowId, RowSet, Schema, ShardedTable, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One merged group in the directory: where it lives in each shard, its
/// first-seen position, and its cached no-exclusion output row.
#[derive(Debug, Clone)]
struct MergedGroup {
    key: Vec<Value>,
    /// `per_shard[s]` = the group's index in shard `s`'s cache.
    per_shard: Vec<Option<u32>>,
    /// Global index of the group's first contributing row (`usize::MAX`
    /// for the row-less implicit group) — the merged ordering key.
    first_global: usize,
    /// The fully projected output row with merged aggregate values, reused
    /// verbatim for untouched groups.
    template: Vec<Value>,
}

/// A statement executed shard-parallel over a [`ShardedTable`], retained
/// as per-shard [`GroupedAggregateCache`]s plus a merged group directory.
///
/// Answers the same exclusion questions as an unsharded cache, but takes
/// its exclusion sets per shard (in each shard's local [`RowSet`]
/// universe), which is the shape the shard-parallel ranker produces.
///
/// ```
/// use dbwipes_engine::{parse_select, GroupedAggregateCache, ShardedAggregateCache};
/// use dbwipes_storage::{DataType, Schema, ShardedTable, Table, Value};
/// use std::sync::Arc;
///
/// let mut t = Table::new(
///     "readings",
///     Schema::of(&[("hour", DataType::Int), ("temp", DataType::Float)]),
/// )
/// .unwrap();
/// for i in 0..100i64 {
///     t.push_row(vec![Value::Int(i % 4), Value::Float((i % 8) as f64)]).unwrap();
/// }
/// let stmt = parse_select("SELECT hour, avg(temp), count(*) FROM readings GROUP BY hour").unwrap();
///
/// let unsharded = GroupedAggregateCache::build(&t, &stmt).unwrap();
/// let sharded = ShardedAggregateCache::build(
///     Arc::new(ShardedTable::hash(&t, "hour", 4).unwrap()),
///     &stmt,
/// )
/// .unwrap();
/// // The merged result is identical to single-table execution.
/// assert_eq!(sharded.full_result().rows, unsharded.full_result().rows);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedAggregateCache {
    sharded: Arc<ShardedTable>,
    shards: Vec<GroupedAggregateCache<'static>>,
    stmt: SelectStatement,
    schema: Schema,
    merged: Vec<MergedGroup>,
    key_index: HashMap<Vec<Value>, u32>,
    agg_items: Vec<usize>,
    plain_items: Vec<usize>,
}

impl ShardedAggregateCache {
    /// Executes `stmt` once per shard (concurrently, one scoped thread per
    /// shard) and merges the group directories. Validation errors are the
    /// same ones [`GroupedAggregateCache::build`] reports.
    pub fn build(
        sharded: Arc<ShardedTable>,
        stmt: &SelectStatement,
    ) -> Result<ShardedAggregateCache, EngineError> {
        let shards: Vec<GroupedAggregateCache<'static>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sharded
                .shards()
                .iter()
                .map(|t| {
                    let t = t.clone();
                    scope.spawn(move || GroupedAggregateCache::build_shared(t, stmt))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build thread panicked"))
                .collect::<Result<Vec<_>, EngineError>>()
        })?;

        let n = shards.len();
        let mut merged: Vec<MergedGroup> = Vec::new();
        let mut key_index: HashMap<Vec<Value>, u32> = HashMap::new();
        for (s, cache) in shards.iter().enumerate() {
            for g in 0..cache.num_groups() {
                let key = cache.group_key(g);
                let first_global = cache
                    .group_rows(g)
                    .first()
                    .map(|&local| sharded.global_of(s, local).index())
                    .unwrap_or(usize::MAX);
                let mi = match key_index.get(key) {
                    Some(&mi) => mi as usize,
                    None => {
                        key_index.insert(key.to_vec(), merged.len() as u32);
                        merged.push(MergedGroup {
                            key: key.to_vec(),
                            per_shard: vec![None; n],
                            first_global: usize::MAX,
                            template: Vec::new(),
                        });
                        merged.len() - 1
                    }
                };
                merged[mi].per_shard[s] = Some(g as u32);
                merged[mi].first_global = merged[mi].first_global.min(first_global);
            }
        }
        // Reproduce the unsharded first-seen order: ascending by first
        // contributing global row. (The implicit group of a GROUP BY-less
        // statement is the only row-less group and also the only group.)
        merged.sort_by_key(|m| m.first_global);
        key_index = merged.iter().enumerate().map(|(i, m)| (m.key.clone(), i as u32)).collect();

        let agg_items = shards[0].agg_items().to_vec();
        let plain_items = shards[0].plain_items().to_vec();

        // Templates: plain items come from the shard holding the group's
        // first global row (matching the unsharded representative row);
        // aggregate slots are merged-and-finished across shards.
        for mg in &mut merged {
            let lead = lead_shard(&shards, &sharded, mg);
            let mut template = shards[lead]
                .group_template(mg.per_shard[lead].expect("lead shard holds the group") as usize)
                .to_vec();
            let states = merge_full_states(&shards, mg);
            for (slot, &item) in agg_items.iter().enumerate() {
                template[item] = states[slot].finish();
            }
            mg.template = template;
        }

        Ok(ShardedAggregateCache {
            schema: shards[0].out_schema().clone(),
            sharded,
            shards,
            stmt: stmt.clone(),
            merged,
            key_index,
            agg_items,
            plain_items,
        })
    }

    /// The partition this cache was built over.
    pub fn sharded(&self) -> &Arc<ShardedTable> {
        &self.sharded
    }

    /// The per-shard caches, in shard order.
    pub fn shard_caches(&self) -> &[GroupedAggregateCache<'static>] {
        &self.shards
    }

    /// The statement this cache answers for.
    pub fn statement(&self) -> &SelectStatement {
        &self.stmt
    }

    /// Number of merged groups (before any exclusion).
    pub fn num_groups(&self) -> usize {
        self.merged.len()
    }

    /// Total retained input rows across shards (rows passing the WHERE
    /// clause).
    pub fn num_rows(&self) -> usize {
        self.shards.iter().map(GroupedAggregateCache::num_rows).sum()
    }

    /// The result of the statement with no rows excluded — identical to
    /// the unsharded [`GroupedAggregateCache::full_result`].
    pub fn full_result(&self) -> QueryResult {
        self.result_excluding_local_sets(&self.empty_exclusions())
    }

    /// One empty local exclusion set per shard — the "exclude nothing"
    /// argument shape.
    pub fn empty_exclusions(&self) -> Vec<RowSet> {
        self.shards.iter().map(|c| RowSet::empty(c.table().num_rows())).collect()
    }

    /// The exact full result (ORDER BY / LIMIT applied) after excluding
    /// the given per-shard local row sets — the sharded counterpart of
    /// [`GroupedAggregateCache::result`] with the same exclusion.
    ///
    /// Panics when `excluded` does not hold one set per shard in that
    /// shard's universe.
    pub fn result_excluding_local_sets(&self, excluded: &[RowSet]) -> QueryResult {
        self.check_exclusions(excluded);
        let start = Instant::now();
        let touched = self.touched_maps(excluded, None);

        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(self.merged.len());
        let mut keys: Vec<Vec<Value>> = Vec::with_capacity(self.merged.len());
        for mg in &self.merged {
            let Some(row) = self.cleaned_merged_row(mg, &touched) else {
                continue;
            };
            rows.push(row);
            keys.push(mg.key.clone());
        }

        let order = output_order(&self.stmt, &rows, &keys).expect("validated at build time");
        let mut final_rows = Vec::with_capacity(order.len());
        let mut final_keys = Vec::with_capacity(order.len());
        for &i in &order {
            final_rows.push(std::mem::take(&mut rows[i]));
            final_keys.push(std::mem::take(&mut keys[i]));
        }
        self.finish_result(final_rows, final_keys, start)
    }

    /// The sharded counterpart of
    /// [`GroupedAggregateCache::result`] restricted by key: the cleaned
    /// rows of exactly the requested groups, in merged first-seen order
    /// (ORDER BY not applied; LIMIT falls back to the full path and
    /// filters). Exclusions are per-shard local row sets.
    ///
    /// Panics when `excluded` does not hold one set per shard in that
    /// shard's universe.
    pub fn result_excluding_keys_local_sets(
        &self,
        excluded: &[RowSet],
        keys: &[Vec<Value>],
    ) -> QueryResult {
        self.check_exclusions(excluded);
        if self.stmt.limit.is_some() {
            let full = self.result_excluding_local_sets(excluded);
            let start = Instant::now();
            let wanted: HashSet<&[Value]> = keys.iter().map(|k| k.as_slice()).collect();
            let mut rows = Vec::new();
            let mut out_keys = Vec::new();
            for (row, key) in full.rows.into_iter().zip(full.group_keys) {
                if wanted.contains(key.as_slice()) {
                    rows.push(row);
                    out_keys.push(key);
                }
            }
            return self.finish_result(rows, out_keys, start);
        }
        let start = Instant::now();
        let mut wanted: Vec<u32> =
            keys.iter().filter_map(|k| self.key_index.get(k.as_slice()).copied()).collect();
        wanted.sort_unstable();
        wanted.dedup();
        let touched = self.touched_maps(excluded, Some(&wanted));

        let mut rows = Vec::with_capacity(wanted.len());
        let mut out_keys = Vec::with_capacity(wanted.len());
        for &mi in &wanted {
            let mg = &self.merged[mi as usize];
            let Some(row) = self.cleaned_merged_row(mg, &touched) else {
                continue;
            };
            rows.push(row);
            out_keys.push(mg.key.clone());
        }
        self.finish_result(rows, out_keys, start)
    }

    /// Convenience bridge from base-table rows: splits `excluded` through
    /// the partition's row-id mapping and answers per-key exclusion —
    /// directly comparable with
    /// a by-key [`crate::ExclusionQuery`] on the base table.
    pub fn result_excluding_keys_global(
        &self,
        excluded: &[RowId],
        keys: &[Vec<Value>],
    ) -> QueryResult {
        let split = self.sharded.split_rows(excluded);
        let sets: Vec<RowSet> = split
            .iter()
            .zip(self.sharded.shards())
            .map(|(rows, t)| RowSet::from_rows(t.num_rows(), rows.iter()))
            .collect();
        self.result_excluding_keys_local_sets(&sets, keys)
    }

    fn check_exclusions(&self, excluded: &[RowSet]) {
        assert_eq!(excluded.len(), self.shards.len(), "one exclusion set per shard required");
        for (set, cache) in excluded.iter().zip(&self.shards) {
            assert_eq!(
                set.universe(),
                cache.table().num_rows(),
                "exclusion RowSet universe does not match its shard"
            );
        }
    }

    /// Per-shard touched-position maps for one exclusion query, restricted
    /// to the wanted merged groups when given.
    fn touched_maps(
        &self,
        excluded: &[RowSet],
        wanted: Option<&[u32]>,
    ) -> Vec<HashMap<u32, Vec<u32>>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, cache)| {
                let wanted_s: Option<HashSet<u32>> = wanted.map(|w| {
                    w.iter().filter_map(|&mi| self.merged[mi as usize].per_shard[s]).collect()
                });
                cache.exclusion_positions(&excluded[s], wanted_s.as_ref())
            })
            .collect()
    }

    /// One merged group's output row after the exclusion, or `None` when
    /// the group disappears — the shard-merging analogue of the unsharded
    /// cache's `cleaned_group_row`, with states merged in ascending shard
    /// order before finishing.
    fn cleaned_merged_row(
        &self,
        mg: &MergedGroup,
        touched: &[HashMap<u32, Vec<u32>>],
    ) -> Option<Vec<Value>> {
        let is_touched = mg
            .per_shard
            .iter()
            .enumerate()
            .any(|(s, g)| g.is_some_and(|g| touched[s].contains_key(&g)));
        if !is_touched {
            return Some(mg.template.clone());
        }

        let mut acc: Option<Vec<AggregateState>> = None;
        let mut remaining_total = 0usize;
        for (s, cache) in self.shards.iter().enumerate() {
            let Some(g) = mg.per_shard[s] else { continue };
            let gi = g as usize;
            let (states, remaining) = match touched[s].get(&g) {
                None => (cache.full_states(gi).to_vec(), cache.group_rows(gi).len()),
                Some(positions) => (
                    cache.states_excluding(gi, positions),
                    cache.group_rows(gi).len() - positions.len(),
                ),
            };
            remaining_total += remaining;
            match &mut acc {
                None => acc = Some(states),
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(&states) {
                        x.merge(y);
                    }
                }
            }
        }
        let states = acc.expect("merged group exists in at least one shard");

        let has_group_by = !self.stmt.group_by.is_empty();
        if remaining_total == 0 && has_group_by {
            return None;
        }
        let mut row = mg.template.clone();
        for (slot, &item) in self.agg_items.iter().enumerate() {
            row[item] = states[slot].finish();
        }
        if remaining_total == 0 {
            for &item in &self.plain_items {
                row[item] = Value::Null;
            }
        }
        Some(row)
    }

    /// Wraps computed rows into a lineage-free [`QueryResult`] (mirrors the
    /// unsharded cache).
    fn finish_result(
        &self,
        rows: Vec<Vec<Value>>,
        keys: Vec<Vec<Value>>,
        start: Instant,
    ) -> QueryResult {
        let mut lineage = Lineage::new(self.sharded.shard(0).name());
        for _ in &rows {
            lineage.add_group();
        }
        let mut graph = OperatorGraph::new();
        graph.push(
            OperatorKind::Aggregate {
                aggregates: self.stmt.aggregates().iter().map(|a| a.to_string()).collect(),
            },
            rows.len(),
        );
        QueryResult {
            statement: self.stmt.clone(),
            schema: self.schema.clone(),
            rows,
            group_keys: keys,
            lineage,
            graph,
            execution_nanos: start.elapsed().as_nanos(),
        }
    }
}

/// The shard holding the merged group's first global row (ties broken by
/// shard index; the row-less implicit group falls back to its first
/// holder).
fn lead_shard(
    shards: &[GroupedAggregateCache<'static>],
    sharded: &ShardedTable,
    mg: &MergedGroup,
) -> usize {
    let mut lead = None;
    let mut best = usize::MAX;
    for (s, g) in mg.per_shard.iter().enumerate() {
        let Some(g) = g else { continue };
        let first = shards[s]
            .group_rows(*g as usize)
            .first()
            .map(|&local| sharded.global_of(s, local).index())
            .unwrap_or(usize::MAX);
        if lead.is_none() || first < best {
            lead = Some(s);
            best = first;
        }
    }
    lead.expect("merged group exists in at least one shard")
}

/// Full per-slot states of one merged group, merged in ascending shard
/// order starting from the first holder.
fn merge_full_states(
    shards: &[GroupedAggregateCache<'static>],
    mg: &MergedGroup,
) -> Vec<AggregateState> {
    let mut acc: Option<Vec<AggregateState>> = None;
    for (s, g) in mg.per_shard.iter().enumerate() {
        let Some(g) = g else { continue };
        let states = shards[s].full_states(*g as usize);
        match &mut acc {
            None => acc = Some(states.to_vec()),
            Some(a) => {
                for (x, y) in a.iter_mut().zip(states) {
                    x.merge(y);
                }
            }
        }
    }
    acc.expect("merged group exists in at least one shard")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::ExclusionQuery;
    use crate::parser::parse_select;
    use dbwipes_storage::{DataType, Schema, Table};

    /// Dyadic temp values (multiples of 1/32) keep per-shard partial sums
    /// exact, so sharded results are bit-identical to unsharded ones.
    fn readings(rows: i64) -> Table {
        let schema = Schema::of(&[
            ("window", DataType::Int),
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        for i in 0..rows {
            let temp = if i % 17 == 3 {
                Value::Null
            } else {
                Value::Float(16.0 + ((i * 7) % 64) as f64 / 32.0)
            };
            t.push_row(vec![Value::Int(i % 5), Value::Int(i % 11), temp]).unwrap();
        }
        t.delete_row(RowId(12)).unwrap();
        t
    }

    fn assert_same(a: &QueryResult, b: &QueryResult, context: &str) {
        assert_eq!(a.rows, b.rows, "{context}");
        assert_eq!(a.group_keys, b.group_keys, "{context}");
        assert_eq!(a.schema.names(), b.schema.names(), "{context}");
    }

    fn check_statement(sql: &str) {
        let t = readings(200);
        let stmt = parse_select(sql).unwrap();
        let unsharded = GroupedAggregateCache::build(&t, &stmt).unwrap();
        for shards in [1usize, 3, 4, 300] {
            let st = Arc::new(ShardedTable::hash(&t, "sensorid", shards).unwrap());
            let cache = ShardedAggregateCache::build(st, &stmt).unwrap();
            assert_same(
                &cache.full_result(),
                &unsharded.full_result(),
                &format!("{sql} full, {shards} shards"),
            );

            // Exclusions across shard boundaries.
            let excluded: Vec<RowId> = (0..200usize).filter(|i| i % 7 == 2).map(RowId).collect();
            let keys: Vec<Vec<Value>> = vec![vec![Value::Int(1)], vec![Value::Int(3)]];
            assert_same(
                &cache.result_excluding_keys_global(&excluded, &keys),
                &unsharded.result(&ExclusionQuery::new().excluding_rows(&excluded).for_keys(&keys)),
                &format!("{sql} by-key, {shards} shards"),
            );

            // Full exclusion path with ORDER BY / LIMIT re-applied.
            let split = cache.sharded().split_rows(&excluded);
            let sets: Vec<RowSet> = split
                .iter()
                .zip(cache.sharded().shards())
                .map(|(rows, t)| RowSet::from_rows(t.num_rows(), rows.iter()))
                .collect();
            assert_same(
                &cache.result_excluding_local_sets(&sets),
                &unsharded.result(&ExclusionQuery::new().excluding_rows(&excluded)),
                &format!("{sql} full-excluding, {shards} shards"),
            );
        }
    }

    #[test]
    fn merged_results_match_unsharded_for_all_aggregates() {
        check_statement(
            "SELECT window, avg(temp), sum(temp), count(*), count(temp) \
             FROM readings GROUP BY window",
        );
        check_statement("SELECT window, min(temp), max(temp) FROM readings GROUP BY window");
        check_statement(
            "SELECT window, stddev(temp), variance(temp) FROM readings GROUP BY window",
        );
    }

    #[test]
    fn merged_results_match_unsharded_with_where_order_and_limit() {
        check_statement(
            "SELECT window, avg(temp) AS a FROM readings WHERE sensorid <> 3 \
             GROUP BY window ORDER BY a DESC",
        );
        check_statement(
            "SELECT window, avg(temp) AS a FROM readings GROUP BY window ORDER BY a DESC LIMIT 2",
        );
    }

    #[test]
    fn implicit_group_merges_and_survives_total_exclusion() {
        check_statement("SELECT avg(temp), count(*), min(temp) FROM readings");
        // Excluding everything leaves the implicit group with empty-input
        // values, exactly like the unsharded cache.
        let t = readings(40);
        let stmt = parse_select("SELECT avg(temp), count(*), max(temp) FROM readings").unwrap();
        let st = Arc::new(ShardedTable::hash(&t, "sensorid", 4).unwrap());
        let cache = ShardedAggregateCache::build(st, &stmt).unwrap();
        let unsharded = GroupedAggregateCache::build(&t, &stmt).unwrap();
        let all: Vec<RowId> = (0..40usize).map(RowId).collect();
        assert_same(
            &cache.result_excluding_keys_global(&all, &[vec![]]),
            &unsharded.result(&ExclusionQuery::new().excluding_rows(&all).for_keys(&[vec![]])),
            "implicit group total exclusion",
        );
    }

    #[test]
    fn fully_excluded_groups_disappear_across_shards() {
        let t = readings(100);
        let stmt = parse_select("SELECT window, avg(temp) FROM readings GROUP BY window").unwrap();
        let st = Arc::new(ShardedTable::hash(&t, "sensorid", 4).unwrap());
        let cache = ShardedAggregateCache::build(st, &stmt).unwrap();
        let unsharded = GroupedAggregateCache::build(&t, &stmt).unwrap();
        // Exclude every row of window 2 (they are spread over all shards).
        let excluded: Vec<RowId> = (0..100usize).filter(|i| i % 5 == 2).map(RowId).collect();
        let keys = vec![vec![Value::Int(2)], vec![Value::Int(4)]];
        let got = cache.result_excluding_keys_global(&excluded, &keys);
        assert_same(
            &got,
            &unsharded.result(&ExclusionQuery::new().excluding_rows(&excluded).for_keys(&keys)),
            "vanished group",
        );
        assert_eq!(got.len(), 1, "window 2 must disappear");
    }

    #[test]
    fn range_partition_merges_identically() {
        let t = readings(150);
        let stmt = parse_select("SELECT window, avg(temp), count(*) FROM readings GROUP BY window")
            .unwrap();
        let unsharded = GroupedAggregateCache::build(&t, &stmt).unwrap();
        let st = Arc::new(ShardedTable::range(&t, "temp", 5).unwrap());
        let cache = ShardedAggregateCache::build(st, &stmt).unwrap();
        assert_same(&cache.full_result(), &unsharded.full_result(), "range partition");
        assert_eq!(cache.num_groups(), unsharded.num_groups());
        assert_eq!(cache.num_rows(), unsharded.num_rows());
        assert_eq!(cache.statement(), &stmt);
        assert_eq!(cache.shard_caches().len(), 5);
    }

    #[test]
    fn build_rejects_invalid_statements() {
        let t = readings(20);
        let stmt =
            parse_select("SELECT sensorid, avg(temp) FROM readings GROUP BY window").unwrap();
        let st = Arc::new(ShardedTable::hash(&t, "sensorid", 2).unwrap());
        assert!(ShardedAggregateCache::build(st, &stmt).is_err());
    }
}

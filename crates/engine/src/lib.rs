//! # dbwipes-engine
//!
//! An embedded SQL-subset query engine with lineage capture — the substrate
//! that replaces PostgreSQL in this reproduction of DBWipes (Wu, Madden,
//! Stonebraker, VLDB 2012).
//!
//! The engine supports exactly the query shape the paper's problem
//! statement assumes (§2.1): single-block aggregate queries
//! `SELECT keys..., agg(expr)... FROM t [WHERE p] [GROUP BY keys] [ORDER BY ...] [LIMIT n]`
//! with the "common PostgreSQL aggregates" avg, sum, count, min, max,
//! stddev and variance (§2.2.2). Every execution records:
//!
//! * fine-grained lineage — for each output group, the input [`RowId`]s
//!   that produced it (consumed by `dbwipes-core`'s Preprocessor), and
//! * a coarse-grained operator graph (shown by the dashboard's explain
//!   view and used as the coarse-provenance baseline in experiment E5).
//!
//! [`RowId`]: dbwipes_storage::RowId
//!
//! ## Example
//!
//! ```
//! use dbwipes_engine::{execute_sql};
//! use dbwipes_storage::{Catalog, Schema, Table, DataType, Value};
//!
//! let mut t = Table::new("readings", Schema::of(&[
//!     ("hour", DataType::Int), ("temp", DataType::Float),
//! ])).unwrap();
//! t.push_row(vec![Value::Int(0), Value::Float(20.0)]).unwrap();
//! t.push_row(vec![Value::Int(0), Value::Float(24.0)]).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register(t).unwrap();
//!
//! let result = execute_sql(&catalog, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
//! assert_eq!(result.value(0, "avg_temp").unwrap(), Value::Float(22.0));
//! assert_eq!(result.inputs_of(0).len(), 2);
//! ```
//!
//! ## The merge contract
//!
//! Every aggregate the engine supports carries *decomposable* partial
//! state ([`AggregateState`]): raw sums and counts for avg/sum/count, raw
//! moments for stddev/variance, extremes for min/max. Merging two states
//! of the same function yields the state of the concatenated input, which
//! is what lets [`GroupedAggregateCache`]s built independently per shard
//! of a [`ShardedTable`](dbwipes_storage::ShardedTable) be combined by
//! [`ShardedAggregateCache`] into results matching single-table execution:
//!
//! ```
//! use dbwipes_engine::aggregate::AggregateState;
//! use dbwipes_engine::AggregateFunc;
//!
//! let mut left = AggregateState::new(AggregateFunc::Avg);
//! let mut right = AggregateState::new(AggregateFunc::Avg);
//! for v in [1.0, 2.0] { left.add(Some(v)); }
//! for v in [3.0, 6.0] { right.add(Some(v)); }
//! let mut whole = AggregateState::new(AggregateFunc::Avg);
//! for v in [1.0, 2.0, 3.0, 6.0] { whole.add(Some(v)); }
//!
//! left.merge(&right);
//! assert_eq!(left.finish(), whole.finish());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod aggregate;
pub mod ast;
pub mod error;
pub mod executor;
pub mod incremental;
pub mod lexer;
pub mod parser;
pub mod result;
pub mod sharded;
pub mod snapshot;

pub use aggregate::AggregateState;
pub use ast::{
    AggregateArg, AggregateCall, AggregateFunc, OrderBy, SelectExpr, SelectItem, SelectStatement,
    SortOrder,
};
pub use error::EngineError;
pub use executor::{execute, execute_on_catalog, execute_sql, ExecOptions};
pub use incremental::{CacheFingerprint, ExclusionQuery, GroupedAggregateCache};
pub use parser::{parse_expr, parse_select};
pub use result::QueryResult;
pub use sharded::ShardedAggregateCache;
pub use snapshot::{decode_cache, encode_cache};

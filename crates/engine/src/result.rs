//! Query results: output rows plus the provenance captured while computing
//! them.

use crate::ast::SelectStatement;
use crate::error::EngineError;
use dbwipes_provenance::{Lineage, OperatorGraph};
use dbwipes_storage::{RowId, Schema, Value};

/// The result of executing a [`SelectStatement`]: the output rows, the
/// schema describing them, the per-group fine-grained lineage, and the
/// coarse-grained operator graph.
///
/// Row `i` of [`rows`](Self::rows) corresponds to lineage group `i`, to
/// group key `i` and — via the dashboard — to the `i`-th point of the
/// scatterplot the user brushes over.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The statement that was executed (after any clean-as-you-query
    /// rewrites).
    pub statement: SelectStatement,
    /// Output schema: one field per SELECT item.
    pub schema: Schema,
    /// Output rows, one per group.
    pub rows: Vec<Vec<Value>>,
    /// For each output row, the group-by key values (empty when the query
    /// has no GROUP BY).
    pub group_keys: Vec<Vec<Value>>,
    /// Fine-grained lineage: group `i` ↔ output row `i`.
    pub lineage: Lineage,
    /// Coarse-grained provenance of the execution.
    pub graph: OperatorGraph,
    /// Wall-clock execution time in nanoseconds (used by the latency
    /// breakdown experiment).
    pub execution_nanos: u128,
}

impl QueryResult {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize, EngineError> {
        self.schema.resolve(name).map_err(EngineError::from)
    }

    /// Names of the output columns.
    pub fn column_names(&self) -> Vec<String> {
        self.schema.names()
    }

    /// The value at output row `row`, column `name`.
    pub fn value(&self, row: usize, name: &str) -> Result<Value, EngineError> {
        let col = self.column_index(name)?;
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .cloned()
            .ok_or_else(|| EngineError::plan(format!("output row {row} out of range")))
    }

    /// The value at output row `row`, column `name`, as `f64` (NULL → None).
    pub fn value_f64(&self, row: usize, name: &str) -> Result<Option<f64>, EngineError> {
        Ok(self.value(row, name)?.as_f64())
    }

    /// Indices (into the SELECT list / output columns) of the aggregate
    /// items.
    pub fn aggregate_columns(&self) -> Vec<usize> {
        self.statement
            .items
            .iter()
            .enumerate()
            .filter(|(_, item)| matches!(item.expr, crate::ast::SelectExpr::Aggregate(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the non-aggregate (group key) items.
    pub fn key_columns(&self) -> Vec<usize> {
        self.statement
            .items
            .iter()
            .enumerate()
            .filter(|(_, item)| !matches!(item.expr, crate::ast::SelectExpr::Aggregate(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The input rows (in the FROM table) that produced output row `row`.
    pub fn inputs_of(&self, row: usize) -> &[RowId] {
        self.lineage.inputs_of(row)
    }

    /// The distinct input rows behind a set of output rows — the paper's
    /// `F`, the starting point of the Preprocessor.
    pub fn inputs_of_rows(&self, rows: &[usize]) -> Vec<RowId> {
        self.lineage.inputs_of_groups(rows)
    }

    /// Renders the result as a fixed-width ASCII table (used by examples
    /// and the report binaries).
    pub fn to_display(&self, limit: usize) -> String {
        let names = self.column_names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let shown: Vec<&Vec<Value>> = self.rows.iter().take(limit).collect();
        let rendered: Vec<Vec<String>> =
            shown.iter().map(|r| r.iter().map(format_cell).collect::<Vec<_>>()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{:width$}", n, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > limit {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - limit));
        }
        out
    }
}

fn format_cell(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:.3}"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggregateArg, AggregateCall, AggregateFunc, SelectExpr, SelectItem};
    use dbwipes_storage::{col, DataType, Field};

    fn result() -> QueryResult {
        let statement = SelectStatement {
            items: vec![
                SelectItem { expr: SelectExpr::Column("hour".into()), alias: None },
                SelectItem {
                    expr: SelectExpr::Aggregate(AggregateCall {
                        func: AggregateFunc::Avg,
                        arg: AggregateArg::Expr(col("temp")),
                    }),
                    alias: None,
                },
            ],
            table: "readings".into(),
            where_clause: None,
            group_by: vec!["hour".into()],
            order_by: vec![],
            limit: None,
        };
        let schema = Schema::new(vec![
            Field::nullable("hour", DataType::Int),
            Field::nullable("avg_temp", DataType::Float),
        ])
        .unwrap();
        let mut lineage = Lineage::new("readings");
        let g0 = lineage.add_group();
        lineage.record_all(g0, [RowId(0), RowId(1)]);
        let g1 = lineage.add_group();
        lineage.record_all(g1, [RowId(2)]);
        QueryResult {
            statement,
            schema,
            rows: vec![
                vec![Value::Int(0), Value::Float(20.0)],
                vec![Value::Int(1), Value::Float(120.0)],
            ],
            group_keys: vec![vec![Value::Int(0)], vec![Value::Int(1)]],
            lineage,
            graph: OperatorGraph::new(),
            execution_nanos: 42,
        }
    }

    #[test]
    fn accessors() {
        let r = result();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.column_names(), vec!["hour".to_string(), "avg_temp".to_string()]);
        assert_eq!(r.value(1, "avg_temp").unwrap(), Value::Float(120.0));
        assert_eq!(r.value_f64(0, "hour").unwrap(), Some(0.0));
        assert!(r.value(5, "hour").is_err());
        assert!(r.value(0, "missing").is_err());
        assert_eq!(r.aggregate_columns(), vec![1]);
        assert_eq!(r.key_columns(), vec![0]);
    }

    #[test]
    fn lineage_lookups() {
        let r = result();
        assert_eq!(r.inputs_of(0), &[RowId(0), RowId(1)]);
        assert_eq!(r.inputs_of(1), &[RowId(2)]);
        assert_eq!(r.inputs_of_rows(&[0, 1]), vec![RowId(0), RowId(1), RowId(2)]);
    }

    #[test]
    fn display_renders_aligned_table() {
        let r = result();
        let d = r.to_display(10);
        assert!(d.contains("hour"));
        assert!(d.contains("avg_temp"));
        assert!(d.contains("120.000"));
        let truncated = r.to_display(1);
        assert!(truncated.contains("1 more rows"));
    }
}

//! Abstract syntax tree for the SQL subset DBWipes supports.
//!
//! DBWipes queries are single-block aggregate queries of the form
//!
//! ```sql
//! SELECT g1, ..., agg1(e1), agg2(e2), ...
//! FROM table
//! [WHERE predicate]
//! [GROUP BY g1, ...]
//! [ORDER BY item [ASC|DESC]]
//! [LIMIT n]
//! ```
//!
//! which is exactly what the paper's §2.1 problem statement assumes (one
//! aggregate operator `O`, one group-by operator `G`). Scalar expressions
//! reuse [`dbwipes_storage::Expr`].

use dbwipes_storage::Expr;
use std::fmt;

/// The aggregate functions DBWipes supports — the paper lists "the common
/// PostgreSQL aggregates (e.g., avg, sum, min, max, and stddev)" (§2.2.2);
/// we add count and variance, which the error-metric forms also use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunc {
    /// Arithmetic mean of non-NULL values.
    Avg,
    /// Sum of non-NULL values.
    Sum,
    /// Count of rows (`COUNT(*)`) or of non-NULL values (`COUNT(x)`).
    Count,
    /// Minimum non-NULL value.
    Min,
    /// Maximum non-NULL value.
    Max,
    /// Sample standard deviation of non-NULL values.
    StdDev,
    /// Sample variance of non-NULL values.
    Variance,
}

impl AggregateFunc {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "avg" | "mean" => AggregateFunc::Avg,
            "sum" => AggregateFunc::Sum,
            "count" => AggregateFunc::Count,
            "min" => AggregateFunc::Min,
            "max" => AggregateFunc::Max,
            "stddev" | "std" | "stdev" => AggregateFunc::StdDev,
            "variance" | "var" => AggregateFunc::Variance,
            _ => return None,
        })
    }

    /// The canonical SQL name.
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunc::Avg => "avg",
            AggregateFunc::Sum => "sum",
            AggregateFunc::Count => "count",
            AggregateFunc::Min => "min",
            AggregateFunc::Max => "max",
            AggregateFunc::StdDev => "stddev",
            AggregateFunc::Variance => "variance",
        }
    }

    /// True when single tuples can be *removed* from the aggregate state in
    /// O(1) (sum-like aggregates); min/max require a rescan.
    pub fn supports_removal(self) -> bool {
        !matches!(self, AggregateFunc::Min | AggregateFunc::Max)
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The argument of an aggregate call.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateArg {
    /// `COUNT(*)`.
    Star,
    /// An arbitrary scalar expression, usually a bare column.
    Expr(Expr),
}

impl fmt::Display for AggregateArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateArg::Star => f.write_str("*"),
            AggregateArg::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// A single aggregate call, e.g. `avg(temp)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateCall {
    /// Which aggregate function.
    pub func: AggregateFunc,
    /// Its argument.
    pub arg: AggregateArg,
}

impl fmt::Display for AggregateCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.func, self.arg)
    }
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectExpr {
    /// A plain column reference (must appear in GROUP BY).
    Column(String),
    /// An aggregate call.
    Aggregate(AggregateCall),
    /// A scalar expression over group-by columns (e.g. `day / 7`).
    Scalar(Expr),
}

impl fmt::Display for SelectExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectExpr::Column(c) => f.write_str(c),
            SelectExpr::Aggregate(a) => write!(f, "{a}"),
            SelectExpr::Scalar(e) => write!(f, "{e}"),
        }
    }
}

/// A SELECT-list item with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The selected expression.
    pub expr: SelectExpr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

impl SelectItem {
    /// The output column name: the alias if given, otherwise a rendering of
    /// the expression (`avg(temp)` → `avg_temp`).
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            SelectExpr::Column(c) => c.clone(),
            SelectExpr::Aggregate(a) => {
                let arg = match &a.arg {
                    AggregateArg::Star => "all".to_string(),
                    AggregateArg::Expr(Expr::Column(c)) => c.clone(),
                    AggregateArg::Expr(e) => sanitize(&e.to_string()),
                };
                format!("{}_{}", a.func.name(), arg)
            }
            SelectExpr::Scalar(e) => sanitize(&e.to_string()),
        }
    }
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' }).collect()
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.expr),
            None => write!(f, "{}", self.expr),
        }
    }
}

/// Sort direction in ORDER BY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY term: an output column (by name or 1-based position) and a
/// direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Output column name or 1-based ordinal rendered as a string.
    pub target: String,
    /// Sort direction.
    pub order: SortOrder,
}

/// A parsed single-block SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// SELECT-list items.
    pub items: Vec<SelectItem>,
    /// The FROM table.
    pub table: String,
    /// Optional WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// ORDER BY terms.
    pub order_by: Vec<OrderBy>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// The aggregate calls in the SELECT list, in order.
    pub fn aggregates(&self) -> Vec<&AggregateCall> {
        self.items
            .iter()
            .filter_map(|i| match &i.expr {
                SelectExpr::Aggregate(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// True when the SELECT list contains at least one aggregate.
    pub fn has_aggregates(&self) -> bool {
        !self.aggregates().is_empty()
    }

    /// Renders the statement back to SQL. The rendering is canonical (upper
    /// case keywords, explicit aliases omitted when absent) and is what the
    /// dashboard shows in the query form after each cleaning step.
    pub fn to_sql(&self) -> String {
        let mut sql = String::from("SELECT ");
        sql.push_str(&self.items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", "));
        sql.push_str(&format!(" FROM {}", self.table));
        if let Some(w) = &self.where_clause {
            sql.push_str(&format!(" WHERE {w}"));
        }
        if !self.group_by.is_empty() {
            sql.push_str(&format!(" GROUP BY {}", self.group_by.join(", ")));
        }
        if !self.order_by.is_empty() {
            let terms: Vec<String> = self
                .order_by
                .iter()
                .map(|o| {
                    format!(
                        "{}{}",
                        o.target,
                        match o.order {
                            SortOrder::Asc => "",
                            SortOrder::Desc => " DESC",
                        }
                    )
                })
                .collect();
            sql.push_str(&format!(" ORDER BY {}", terms.join(", ")));
        }
        if let Some(l) = self.limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        sql
    }

    /// Returns a copy of the statement with `extra` conjoined onto the WHERE
    /// clause — the primitive behind "clean as you query": clicking a ranked
    /// predicate rewrites the query with `AND NOT (predicate)`.
    pub fn with_additional_filter(&self, extra: Expr) -> SelectStatement {
        let mut out = self.clone();
        out.where_clause = Some(match out.where_clause.take() {
            Some(w) => w.and(extra),
            None => extra,
        });
        out
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::{col, lit};
    use std::ops::Not as _;

    fn stmt() -> SelectStatement {
        SelectStatement {
            items: vec![
                SelectItem { expr: SelectExpr::Column("day".into()), alias: None },
                SelectItem {
                    expr: SelectExpr::Aggregate(AggregateCall {
                        func: AggregateFunc::Sum,
                        arg: AggregateArg::Expr(col("amount")),
                    }),
                    alias: Some("total".into()),
                },
            ],
            table: "donations".into(),
            where_clause: Some(col("candidate").eq(lit("McCain"))),
            group_by: vec!["day".into()],
            order_by: vec![OrderBy { target: "day".into(), order: SortOrder::Asc }],
            limit: Some(100),
        }
    }

    #[test]
    fn aggregate_func_names_round_trip() {
        for f in [
            AggregateFunc::Avg,
            AggregateFunc::Sum,
            AggregateFunc::Count,
            AggregateFunc::Min,
            AggregateFunc::Max,
            AggregateFunc::StdDev,
            AggregateFunc::Variance,
        ] {
            assert_eq!(AggregateFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggregateFunc::from_name("AVG"), Some(AggregateFunc::Avg));
        assert_eq!(AggregateFunc::from_name("std"), Some(AggregateFunc::StdDev));
        assert_eq!(AggregateFunc::from_name("median"), None);
        assert!(AggregateFunc::Sum.supports_removal());
        assert!(!AggregateFunc::Max.supports_removal());
    }

    #[test]
    fn output_names() {
        let s = stmt();
        assert_eq!(s.items[0].output_name(), "day");
        assert_eq!(s.items[1].output_name(), "total");
        let unaliased = SelectItem {
            expr: SelectExpr::Aggregate(AggregateCall {
                func: AggregateFunc::Avg,
                arg: AggregateArg::Expr(col("temp")),
            }),
            alias: None,
        };
        assert_eq!(unaliased.output_name(), "avg_temp");
        let star = SelectItem {
            expr: SelectExpr::Aggregate(AggregateCall {
                func: AggregateFunc::Count,
                arg: AggregateArg::Star,
            }),
            alias: None,
        };
        assert_eq!(star.output_name(), "count_all");
    }

    #[test]
    fn to_sql_round_trip_shape() {
        let sql = stmt().to_sql();
        assert_eq!(
            sql,
            "SELECT day, sum(amount) AS total FROM donations WHERE candidate = 'McCain' \
             GROUP BY day ORDER BY day LIMIT 100"
        );
        assert_eq!(stmt().to_string(), sql);
    }

    #[test]
    fn with_additional_filter_conjoins() {
        let s = stmt().with_additional_filter(col("memo").contains("SPOUSE").not());
        let sql = s.to_sql();
        assert!(sql.contains("WHERE (candidate = 'McCain' AND NOT (memo LIKE '%SPOUSE%'))"));

        let mut no_where = stmt();
        no_where.where_clause = None;
        let s = no_where.with_additional_filter(col("a").eq(lit(1)));
        assert!(s.to_sql().contains("WHERE a = 1"));
    }

    #[test]
    fn aggregates_accessor() {
        let s = stmt();
        assert!(s.has_aggregates());
        assert_eq!(s.aggregates().len(), 1);
        assert_eq!(s.aggregates()[0].func, AggregateFunc::Sum);
        assert_eq!(s.aggregates()[0].to_string(), "sum(amount)");
    }
}

//! Error type for the query engine.

use dbwipes_storage::StorageError;
use std::fmt;

/// Errors produced while parsing, planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The SQL text could not be tokenized or parsed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset in the input where the problem was detected.
        position: usize,
    },
    /// The query is syntactically valid but not supported or not well formed
    /// (e.g. a non-aggregated column that is not in GROUP BY).
    Plan(String),
    /// An error bubbled up from the storage layer.
    Storage(StorageError),
}

impl EngineError {
    /// Convenience constructor for parse errors.
    pub fn parse(message: impl Into<String>, position: usize) -> Self {
        EngineError::Parse { message: message.into(), position }
    }

    /// Convenience constructor for planning errors.
    pub fn plan(message: impl Into<String>) -> Self {
        EngineError::Plan(message.into())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            EngineError::Plan(msg) => write!(f, "planning error: {msg}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = EngineError::parse("unexpected token", 12);
        assert!(e.to_string().contains("byte 12"));
        let e = EngineError::plan("no aggregates");
        assert!(e.to_string().contains("planning"));
        let e: EngineError = StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&EngineError::plan("x")).is_none());
    }
}

//! SQL tokenizer.

use crate::error::EngineError;

/// A lexical token with its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the input.
    pub position: usize,
}

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognised by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL text, returning tokens terminated by [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, EngineError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, position: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, position: start });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, position: start });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, position: start });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, position: start });
                i += 1;
            }
            '-' => {
                // `--` starts a comment to end of line.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token { kind: TokenKind::Minus, position: start });
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, position: start });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, position: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, position: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::NotEq, position: start });
                    i += 2;
                } else {
                    return Err(EngineError::parse("unexpected '!'", start));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::LtEq, position: start });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::NotEq, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, position: start });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::GtEq, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, position: start });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            closed = true;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                if !closed {
                    return Err(EngineError::parse("unterminated string literal", start));
                }
                tokens.push(Token { kind: TokenKind::Str(s), position: start });
            }
            '0'..='9' | '.' => {
                let mut end = i;
                let mut saw_dot = false;
                let mut saw_digit = false;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    if b.is_ascii_digit() {
                        saw_digit = true;
                        end += 1;
                    } else if b == '.' && !saw_dot {
                        saw_dot = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                if !saw_digit {
                    return Err(EngineError::parse("unexpected '.'", start));
                }
                let text = &input[i..end];
                let kind = if saw_dot {
                    TokenKind::Float(
                        text.parse().map_err(|_| EngineError::parse("bad float literal", start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse().map_err(|_| EngineError::parse("bad int literal", start))?,
                    )
                };
                tokens.push(Token { kind, position: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                // Double-quoted identifiers are accepted and unquoted.
                if c == '"' {
                    let mut s = String::new();
                    i += 1;
                    let mut closed = false;
                    while i < bytes.len() {
                        if bytes[i] == b'"' {
                            i += 1;
                            closed = true;
                            break;
                        }
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                    if !closed {
                        return Err(EngineError::parse("unterminated quoted identifier", start));
                    }
                    tokens.push(Token { kind: TokenKind::Ident(s), position: start });
                } else {
                    let mut end = i;
                    while end < bytes.len() {
                        let b = bytes[end] as char;
                        if b.is_ascii_alphanumeric() || b == '_' || b == '.' {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(input[i..end].to_string()),
                        position: start,
                    });
                    i = end;
                }
            }
            other => {
                return Err(EngineError::parse(format!("unexpected character '{other}'"), start))
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, position: input.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_full_query() {
        let toks =
            kinds("SELECT avg(temp), stddev(temp) FROM readings WHERE temp >= 10.5 GROUP BY hour");
        assert!(toks.contains(&TokenKind::Ident("SELECT".into())));
        assert!(toks.contains(&TokenKind::Ident("avg".into())));
        assert!(toks.contains(&TokenKind::LParen));
        assert!(toks.contains(&TokenKind::GtEq));
        assert!(toks.contains(&TokenKind::Float(10.5)));
        assert_eq!(toks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = kinds("memo = 'REATTRIBUTION TO SPOUSE'");
        assert!(toks.contains(&TokenKind::Str("REATTRIBUTION TO SPOUSE".into())));
        let toks = kinds("name = 'O''Brien'");
        assert!(toks.contains(&TokenKind::Str("O'Brien".into())));
        assert!(tokenize("x = 'unterminated").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <> b != c <= d >= e < f > g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::NotEq,
                TokenKind::Ident("b".into()),
                TokenKind::NotEq,
                TokenKind::Ident("c".into()),
                TokenKind::LtEq,
                TokenKind::Ident("d".into()),
                TokenKind::GtEq,
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        let toks = kinds("-42 + 3.75");
        assert_eq!(
            toks,
            vec![
                TokenKind::Minus,
                TokenKind::Int(42),
                TokenKind::Plus,
                TokenKind::Float(3.75),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("1..2").is_err() || !kinds("1.2").is_empty());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("SELECT a -- this is a comment\nFROM t");
        assert_eq!(toks.len(), 5); // SELECT a FROM t EOF
    }

    #[test]
    fn quoted_identifiers() {
        let toks = kinds("\"weird name\" = 1");
        assert_eq!(toks[0], TokenKind::Ident("weird name".into()));
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn error_positions_reported() {
        match tokenize("a ? b") {
            Err(EngineError::Parse { position, .. }) => assert_eq!(position, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].kind.is_keyword("SELECT"));
        assert!(toks[0].kind.is_keyword("select"));
        assert!(!toks[0].kind.is_keyword("from"));
        assert!(!TokenKind::Eof.is_keyword("select"));
    }
}

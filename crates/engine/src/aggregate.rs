//! Aggregate accumulators.
//!
//! Each accumulator consumes a stream of optional numeric values (NULLs are
//! skipped, matching SQL semantics) and produces a final [`Value`].
//! Sum-like accumulators additionally support *removal* of a previously
//! added value, which lets the influence analysis in `dbwipes-core` perform
//! leave-one-out recomputation in O(1) per tuple instead of O(|group|).
//! Min/max do not support removal and are recomputed from scratch by
//! callers when a tuple is excluded.

use crate::ast::AggregateFunc;
use dbwipes_storage::Value;

/// Incremental state of one aggregate over one group.
#[derive(Debug, Clone)]
pub enum AggregateState {
    /// Average: running sum and non-NULL count.
    Avg {
        /// Sum of values seen.
        sum: f64,
        /// Number of non-NULL values seen.
        count: u64,
    },
    /// Sum: running sum and non-NULL count (a sum over zero values is NULL).
    Sum {
        /// Sum of values seen.
        sum: f64,
        /// Number of non-NULL values seen.
        count: u64,
    },
    /// Count of rows or non-NULL values.
    Count {
        /// Number of counted items.
        count: u64,
    },
    /// Minimum value seen.
    Min {
        /// Current minimum.
        min: Option<f64>,
    },
    /// Maximum value seen.
    Max {
        /// Current maximum.
        max: Option<f64>,
    },
    /// Sample standard deviation / variance via sum and sum of squares.
    Moments {
        /// Sum of values.
        sum: f64,
        /// Sum of squared values.
        sum_sq: f64,
        /// Number of non-NULL values.
        count: u64,
        /// True to report stddev, false to report variance.
        stddev: bool,
    },
}

impl AggregateState {
    /// Creates the empty state for the given aggregate function.
    pub fn new(func: AggregateFunc) -> Self {
        match func {
            AggregateFunc::Avg => AggregateState::Avg { sum: 0.0, count: 0 },
            AggregateFunc::Sum => AggregateState::Sum { sum: 0.0, count: 0 },
            AggregateFunc::Count => AggregateState::Count { count: 0 },
            AggregateFunc::Min => AggregateState::Min { min: None },
            AggregateFunc::Max => AggregateState::Max { max: None },
            AggregateFunc::StdDev => {
                AggregateState::Moments { sum: 0.0, sum_sq: 0.0, count: 0, stddev: true }
            }
            AggregateFunc::Variance => {
                AggregateState::Moments { sum: 0.0, sum_sq: 0.0, count: 0, stddev: false }
            }
        }
    }

    /// The function this state accumulates.
    pub fn func(&self) -> AggregateFunc {
        match self {
            AggregateState::Avg { .. } => AggregateFunc::Avg,
            AggregateState::Sum { .. } => AggregateFunc::Sum,
            AggregateState::Count { .. } => AggregateFunc::Count,
            AggregateState::Min { .. } => AggregateFunc::Min,
            AggregateState::Max { .. } => AggregateFunc::Max,
            AggregateState::Moments { stddev: true, .. } => AggregateFunc::StdDev,
            AggregateState::Moments { stddev: false, .. } => AggregateFunc::Variance,
        }
    }

    /// Adds a value. `None` represents a NULL input, which every aggregate
    /// except `COUNT(*)` skips; `COUNT(*)` callers pass `Some(1.0)` per row.
    pub fn add(&mut self, value: Option<f64>) {
        let v = match value {
            Some(v) => v,
            None => return,
        };
        match self {
            AggregateState::Avg { sum, count } | AggregateState::Sum { sum, count } => {
                *sum += v;
                *count += 1;
            }
            AggregateState::Count { count } => *count += 1,
            AggregateState::Min { min } => {
                *min = Some(match *min {
                    Some(m) => m.min(v),
                    None => v,
                })
            }
            AggregateState::Max { max } => {
                *max = Some(match *max {
                    Some(m) => m.max(v),
                    None => v,
                })
            }
            AggregateState::Moments { sum, sum_sq, count, .. } => {
                *sum += v;
                *sum_sq += v * v;
                *count += 1;
            }
        }
    }

    /// Removes a previously added value. Returns `false` (and leaves the
    /// state untouched) when the aggregate does not support removal
    /// (min/max) — callers then fall back to recomputation.
    pub fn remove(&mut self, value: Option<f64>) -> bool {
        let v = match value {
            Some(v) => v,
            None => return true,
        };
        match self {
            AggregateState::Avg { sum, count } | AggregateState::Sum { sum, count } => {
                if *count == 0 {
                    return false;
                }
                *sum -= v;
                *count -= 1;
                true
            }
            AggregateState::Count { count } => {
                if *count == 0 {
                    return false;
                }
                *count -= 1;
                true
            }
            AggregateState::Min { .. } | AggregateState::Max { .. } => false,
            AggregateState::Moments { sum, sum_sq, count, .. } => {
                if *count == 0 {
                    return false;
                }
                *sum -= v;
                *sum_sq -= v * v;
                *count -= 1;
                true
            }
        }
    }

    /// Merges another state of the same function into this one.
    ///
    /// Panics if the two states accumulate different functions — merging
    /// states across functions is a logic error, not a data error.
    pub fn merge(&mut self, other: &AggregateState) {
        assert_eq!(self.func(), other.func(), "cannot merge different aggregate functions");
        match (self, other) {
            (
                AggregateState::Avg { sum, count } | AggregateState::Sum { sum, count },
                AggregateState::Avg { sum: s2, count: c2 }
                | AggregateState::Sum { sum: s2, count: c2 },
            ) => {
                *sum += s2;
                *count += c2;
            }
            (AggregateState::Count { count }, AggregateState::Count { count: c2 }) => *count += c2,
            (AggregateState::Min { min }, AggregateState::Min { min: m2 }) => {
                *min = match (*min, *m2) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
            (AggregateState::Max { max }, AggregateState::Max { max: m2 }) => {
                *max = match (*max, *m2) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                }
            }
            (
                AggregateState::Moments { sum, sum_sq, count, .. },
                AggregateState::Moments { sum: s2, sum_sq: q2, count: c2, .. },
            ) => {
                *sum += s2;
                *sum_sq += q2;
                *count += c2;
            }
            _ => unreachable!("func equality checked above"),
        }
    }

    /// Finalises the state into an output value.
    ///
    /// Aggregates over zero non-NULL inputs return NULL, except `COUNT`
    /// which returns 0 — matching PostgreSQL.
    pub fn finish(&self) -> Value {
        match self {
            AggregateState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *count as f64)
                }
            }
            AggregateState::Sum { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum)
                }
            }
            AggregateState::Count { count } => Value::Int(*count as i64),
            AggregateState::Min { min } => min.map(Value::Float).unwrap_or(Value::Null),
            AggregateState::Max { max } => max.map(Value::Float).unwrap_or(Value::Null),
            AggregateState::Moments { sum, sum_sq, count, stddev } => {
                if *count < 2 {
                    return if *count == 1 { Value::Float(0.0) } else { Value::Null };
                }
                let n = *count as f64;
                let mean = sum / n;
                // Sample variance; clamp tiny negative values caused by
                // floating point cancellation.
                let var = ((sum_sq - n * mean * mean) / (n - 1.0)).max(0.0);
                Value::Float(if *stddev { var.sqrt() } else { var })
            }
        }
    }

    /// Convenience: computes the aggregate over an iterator of optional
    /// values in one call.
    pub fn compute(func: AggregateFunc, values: impl IntoIterator<Item = Option<f64>>) -> Value {
        let mut s = AggregateState::new(func);
        for v in values {
            s.add(v);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[f64]) -> Vec<Option<f64>> {
        v.iter().map(|x| Some(*x)).collect()
    }

    #[test]
    fn avg_sum_count() {
        assert_eq!(
            AggregateState::compute(AggregateFunc::Avg, vals(&[1.0, 2.0, 3.0])),
            Value::Float(2.0)
        );
        assert_eq!(
            AggregateState::compute(AggregateFunc::Sum, vals(&[1.0, 2.0, 3.5])),
            Value::Float(6.5)
        );
        assert_eq!(AggregateState::compute(AggregateFunc::Count, vals(&[1.0, 2.0])), Value::Int(2));
        // NULLs are skipped.
        assert_eq!(
            AggregateState::compute(AggregateFunc::Avg, vec![Some(10.0), None, Some(20.0)]),
            Value::Float(15.0)
        );
        assert_eq!(
            AggregateState::compute(AggregateFunc::Count, vec![Some(1.0), None]),
            Value::Int(1)
        );
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(AggregateState::compute(AggregateFunc::Avg, vec![]), Value::Null);
        assert_eq!(AggregateState::compute(AggregateFunc::Sum, vec![]), Value::Null);
        assert_eq!(AggregateState::compute(AggregateFunc::Min, vec![]), Value::Null);
        assert_eq!(AggregateState::compute(AggregateFunc::StdDev, vec![]), Value::Null);
        assert_eq!(AggregateState::compute(AggregateFunc::Count, vec![]), Value::Int(0));
    }

    #[test]
    fn min_max() {
        assert_eq!(
            AggregateState::compute(AggregateFunc::Min, vals(&[3.0, -1.0, 2.0])),
            Value::Float(-1.0)
        );
        assert_eq!(
            AggregateState::compute(AggregateFunc::Max, vals(&[3.0, -1.0, 2.0])),
            Value::Float(3.0)
        );
    }

    #[test]
    fn stddev_and_variance_match_reference() {
        // Sample variance of [2, 4, 4, 4, 5, 5, 7, 9] is 32/7.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let var = AggregateState::compute(AggregateFunc::Variance, vals(&data));
        match var {
            Value::Float(v) => assert!((v - 32.0 / 7.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        let sd = AggregateState::compute(AggregateFunc::StdDev, vals(&data));
        match sd {
            Value::Float(v) => assert!((v - (32.0f64 / 7.0).sqrt()).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        // A single value has zero spread.
        assert_eq!(
            AggregateState::compute(AggregateFunc::StdDev, vals(&[42.0])),
            Value::Float(0.0)
        );
    }

    #[test]
    fn removal_matches_recomputation_for_sum_like() {
        for func in [
            AggregateFunc::Avg,
            AggregateFunc::Sum,
            AggregateFunc::StdDev,
            AggregateFunc::Variance,
            AggregateFunc::Count,
        ] {
            let data = [5.0, 1.0, 9.0, 3.0, 7.0];
            let mut s = AggregateState::new(func);
            for v in data {
                s.add(Some(v));
            }
            assert!(s.remove(Some(9.0)));
            let expected = AggregateState::compute(func, vals(&[5.0, 1.0, 3.0, 7.0]));
            let got = s.finish();
            match (got, expected) {
                (Value::Float(a), Value::Float(b)) => assert!((a - b).abs() < 1e-9, "{func}"),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn min_max_do_not_support_removal() {
        let mut s = AggregateState::new(AggregateFunc::Min);
        s.add(Some(1.0));
        assert!(!s.remove(Some(1.0)));
        assert_eq!(s.finish(), Value::Float(1.0));
        let mut s = AggregateState::new(AggregateFunc::Max);
        s.add(Some(1.0));
        assert!(!s.remove(Some(1.0)));
        // Removing NULL is always fine.
        assert!(s.remove(None));
    }

    #[test]
    fn removal_from_empty_state_is_rejected() {
        for func in
            [AggregateFunc::Avg, AggregateFunc::Sum, AggregateFunc::Count, AggregateFunc::StdDev]
        {
            let mut s = AggregateState::new(func);
            assert!(!s.remove(Some(1.0)), "{func}");
        }
    }

    #[test]
    fn merge_combines_partial_states() {
        for func in [
            AggregateFunc::Avg,
            AggregateFunc::Sum,
            AggregateFunc::Count,
            AggregateFunc::Min,
            AggregateFunc::Max,
            AggregateFunc::StdDev,
            AggregateFunc::Variance,
        ] {
            let data = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0];
            let (left, right) = data.split_at(2);
            let mut a = AggregateState::new(func);
            for v in left {
                a.add(Some(*v));
            }
            let mut b = AggregateState::new(func);
            for v in right {
                b.add(Some(*v));
            }
            a.merge(&b);
            let expected = AggregateState::compute(func, vals(&data));
            match (a.finish(), expected) {
                (Value::Float(x), Value::Float(y)) => assert!((x - y).abs() < 1e-9, "{func}"),
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_of_different_functions_panics() {
        let mut a = AggregateState::new(AggregateFunc::Avg);
        let b = AggregateState::new(AggregateFunc::Max);
        a.merge(&b);
    }

    #[test]
    fn func_accessor_round_trips() {
        for func in [
            AggregateFunc::Avg,
            AggregateFunc::Sum,
            AggregateFunc::Count,
            AggregateFunc::Min,
            AggregateFunc::Max,
            AggregateFunc::StdDev,
            AggregateFunc::Variance,
        ] {
            assert_eq!(AggregateState::new(func).func(), func);
        }
    }
}

//! Query execution with lineage capture.
//!
//! The executor implements the single-block aggregate pipeline
//! `Scan → Filter → GroupBy → Aggregate → Project → Sort/Limit`
//! and, while doing so, records the fine-grained lineage (which input rows
//! fed which output group) and the coarse-grained operator graph. This is
//! the hook the paper's Preprocessor relies on: "the Preprocessor computes
//! F, the set of input tuples that generated S" (§2.2.2).
//!
//! The pipeline stages are factored into standalone crate-private
//! functions (`scan_filter`, `build_groups`, `for_each_arg_value`,
//! `project_row`, `output_order`, `output_schema`) shared with the
//! incremental re-aggregation cache in [`crate::incremental`], so the full
//! and incremental paths cannot drift apart.

use crate::aggregate::AggregateState;
use crate::ast::{AggregateArg, AggregateCall, SelectExpr, SelectStatement, SortOrder};
use crate::error::EngineError;
use crate::parser::parse_select;
use crate::result::QueryResult;
use dbwipes_provenance::{Lineage, OperatorGraph, OperatorKind};
use dbwipes_storage::{Catalog, DataType, Field, RowId, Schema, Table, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Options controlling query execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// When false, fine-grained lineage is not recorded. Used by the
    /// provenance-overhead experiment (E7) and by callers that only need
    /// result values (e.g. re-executing a query after cleaning to measure
    /// the error metric).
    pub capture_lineage: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { capture_lineage: true }
    }
}

/// Parses and executes `sql` against a catalog.
pub fn execute_sql(catalog: &Catalog, sql: &str) -> Result<QueryResult, EngineError> {
    let stmt = parse_select(sql)?;
    execute_on_catalog(catalog, &stmt, ExecOptions::default())
}

/// Executes a parsed statement against a catalog.
pub fn execute_on_catalog(
    catalog: &Catalog,
    stmt: &SelectStatement,
    opts: ExecOptions,
) -> Result<QueryResult, EngineError> {
    let table = catalog.table(&stmt.table)?;
    execute(table, stmt, opts)
}

/// Executes a parsed statement against a single table (the statement's
/// FROM clause must name this table).
pub fn execute(
    table: &Table,
    stmt: &SelectStatement,
    opts: ExecOptions,
) -> Result<QueryResult, EngineError> {
    let start = Instant::now();
    validate(table, stmt)?;

    let mut graph = OperatorGraph::new();
    graph.push(OperatorKind::Scan { table: table.name().to_string() }, table.visible_rows());

    // Scan + filter.
    let filtered = scan_filter(table, stmt)?;
    if let Some(pred) = &stmt.where_clause {
        graph.push(OperatorKind::Filter { predicate: pred.to_string() }, filtered.len());
    }

    // Group.
    let (group_keys, group_rows) = build_groups(table, stmt, filtered)?;
    if !stmt.group_by.is_empty() {
        graph.push(OperatorKind::GroupBy { columns: stmt.group_by.clone() }, group_keys.len());
    }

    // Aggregate + project.
    let agg_names: Vec<String> = stmt.aggregates().iter().map(|a| a.to_string()).collect();
    if !agg_names.is_empty() {
        graph.push(OperatorKind::Aggregate { aggregates: agg_names }, group_keys.len());
    }

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(group_keys.len());
    for (gi, g_rows) in group_rows.iter().enumerate() {
        let agg_outputs = aggregate_outputs(table, stmt, g_rows)?;
        rows.push(project_row(table, stmt, &group_keys[gi], g_rows, &agg_outputs)?);
    }

    graph.push(
        OperatorKind::Project { columns: stmt.items.iter().map(|i| i.output_name()).collect() },
        rows.len(),
    );

    // Output schema.
    let schema = output_schema(table, stmt)?;

    // Sort (default: ascending by group key) and limit.
    let order = output_order(stmt, &rows, &group_keys)?;

    // Materialise output in final order, building lineage aligned with it.
    let mut final_rows = Vec::with_capacity(order.len());
    let mut final_keys = Vec::with_capacity(order.len());
    let mut lineage = Lineage::new(table.name());
    for &i in &order {
        final_rows.push(rows[i].clone());
        final_keys.push(group_keys[i].clone());
        let g = lineage.add_group();
        if opts.capture_lineage {
            lineage.record_all(g, group_rows[i].iter().copied());
        }
    }

    Ok(QueryResult {
        statement: stmt.clone(),
        schema,
        rows: final_rows,
        group_keys: final_keys,
        lineage,
        graph,
        execution_nanos: start.elapsed().as_nanos(),
    })
}

/// Scan stage: the visible rows that satisfy the WHERE clause, in scan
/// order.
///
/// WHERE clauses that are pure conjunctions of per-attribute comparisons
/// (the shape parsed queries and predicate rewrites overwhelmingly take)
/// are evaluated through the storage crate's vectorized condition kernels —
/// one typed column scan per conjunct plus a bitmap intersection — instead
/// of the per-row expression walk. Disjunctive and negated clauses
/// (arbitrary `AND`/`OR`/`NOT` trees over those comparisons, the exclusion
/// rewrites "clean as you query" emits) compile through
/// [`dbwipes_storage::CompiledBoolExpr`] into the same kernels folded with
/// word-level bitmap ops. Anything outside both fragments keeps the scalar
/// path; all three produce identical row sets under SQL three-valued logic
/// (only rows where the clause is TRUE survive).
pub(crate) fn scan_filter(
    table: &Table,
    stmt: &SelectStatement,
) -> Result<Vec<RowId>, EngineError> {
    let Some(pred) = &stmt.where_clause else {
        return Ok(table.visible_row_ids().collect());
    };
    if let Some(conjunctive) = dbwipes_storage::ConjunctivePredicate::from_conjunctive_expr(pred) {
        if let Ok(compiled) = conjunctive.compile(table) {
            return Ok(compiled.eval_columns().trues.and(&table.visible_row_set()).to_row_ids());
        }
    }
    if let Ok(compiled) = dbwipes_storage::CompiledBoolExpr::compile(pred, table) {
        dbwipes_storage::note_bool_vectorized();
        return Ok(compiled.eval_columns().trues.and(&table.visible_row_set()).to_row_ids());
    }
    dbwipes_storage::note_bool_fallback();
    let mut filtered: Vec<RowId> = Vec::new();
    for rid in table.visible_row_ids() {
        if pred.matches(table, rid)? {
            filtered.push(rid);
        }
    }
    Ok(filtered)
}

/// [`scan_filter`] restricted to the row suffix starting at physical index
/// `from` — the shape of the append-absorb path, where everything before
/// `from` is already retained and only the streamed suffix needs
/// filtering. Evaluates the scalar predicate walk over the suffix, which
/// produces exactly the rows the vectorized kernels would admit (see
/// [`scan_filter`]'s equivalence note), so absorbing stays bit-identical
/// to a fresh build while the scan cost is O(appended), not O(table).
pub(crate) fn scan_filter_suffix(
    table: &Table,
    stmt: &SelectStatement,
    from: usize,
) -> Result<Vec<RowId>, EngineError> {
    let mut filtered: Vec<RowId> = Vec::new();
    for i in from..table.num_rows() {
        let rid = RowId(i);
        if table.is_deleted(rid) {
            continue;
        }
        match &stmt.where_clause {
            Some(pred) if !pred.matches(table, rid)? => {}
            _ => filtered.push(rid),
        }
    }
    Ok(filtered)
}

/// Group stage: partitions `filtered` by the GROUP BY key, keeping groups in
/// first-seen (scan) order. A query without GROUP BY produces exactly one
/// group, even when no rows survive the filter (PostgreSQL semantics).
pub(crate) type Groups = (Vec<Vec<Value>>, Vec<Vec<RowId>>);

/// See [`Groups`]: returns `(group_keys, group_rows)`.
pub(crate) fn build_groups(
    table: &Table,
    stmt: &SelectStatement,
    filtered: Vec<RowId>,
) -> Result<Groups, EngineError> {
    let group_cols: Vec<usize> = stmt
        .group_by
        .iter()
        .map(|c| table.schema().resolve(c).map_err(EngineError::from))
        .collect::<Result<_, _>>()?;

    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    let mut group_rows: Vec<Vec<RowId>> = Vec::new();

    if group_cols.is_empty() {
        group_keys.push(Vec::new());
        group_rows.push(filtered);
    } else {
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        for &rid in &filtered {
            let key: Vec<Value> = group_cols
                .iter()
                .map(|&c| table.value(rid, c).expect("validated column/row"))
                .collect();
            let idx = match group_index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = group_keys.len();
                    group_index.insert(key.clone(), i);
                    group_keys.push(key);
                    group_rows.push(Vec::new());
                    i
                }
            };
            group_rows[idx].push(rid);
        }
    }
    Ok((group_keys, group_rows))
}

/// Streams the aggregate-argument value of every row in `rows` (in order)
/// into `f` — `None` represents NULL, `COUNT(*)` yields `Some(1.0)` per row.
/// A bare column argument reads the typed column directly instead of boxing
/// a `Value` per row.
pub(crate) fn for_each_arg_value(
    table: &Table,
    call: &AggregateCall,
    rows: &[RowId],
    mut f: impl FnMut(Option<f64>),
) -> Result<(), EngineError> {
    match &call.arg {
        AggregateArg::Star => {
            for _ in rows {
                f(Some(1.0));
            }
        }
        AggregateArg::Expr(e) => {
            if let dbwipes_storage::Expr::Column(cname) = e {
                let cidx = table.schema().resolve(cname)?;
                let column = table.column(cidx).expect("resolved");
                for &rid in rows {
                    f(column.get_f64(rid.index()));
                }
            } else {
                for &rid in rows {
                    f(e.eval(table, rid)?.as_f64());
                }
            }
        }
    }
    Ok(())
}

/// Computes the finished value of every aggregate SELECT item over one
/// group's rows, in SELECT-list order of the aggregate items.
fn aggregate_outputs(
    table: &Table,
    stmt: &SelectStatement,
    g_rows: &[RowId],
) -> Result<Vec<Value>, EngineError> {
    let mut outputs = Vec::new();
    for item in &stmt.items {
        if let SelectExpr::Aggregate(call) = &item.expr {
            let mut state = AggregateState::new(call.func);
            for_each_arg_value(table, call, g_rows, |v| state.add(v))?;
            outputs.push(state.finish());
        }
    }
    Ok(outputs)
}

/// Projects one output row for a group: group-key columns come from the key,
/// scalar expressions are evaluated on a representative row (NULL when the
/// group is empty), aggregate slots are filled from `agg_outputs` (one value
/// per aggregate SELECT item, in order).
pub(crate) fn project_row(
    table: &Table,
    stmt: &SelectStatement,
    group_key: &[Value],
    g_rows: &[RowId],
    agg_outputs: &[Value],
) -> Result<Vec<Value>, EngineError> {
    let mut out_row = Vec::with_capacity(stmt.items.len());
    let mut next_agg = 0usize;
    for item in &stmt.items {
        let v = match &item.expr {
            SelectExpr::Column(name) => {
                let pos = stmt
                    .group_by
                    .iter()
                    .position(|g| g.eq_ignore_ascii_case(name))
                    .expect("validated: select column is in GROUP BY");
                group_key.get(pos).cloned().unwrap_or(Value::Null)
            }
            SelectExpr::Scalar(e) => match g_rows.first() {
                Some(&rid) => e.eval(table, rid)?,
                None => Value::Null,
            },
            SelectExpr::Aggregate(_) => {
                let v = agg_outputs[next_agg].clone();
                next_agg += 1;
                v
            }
        };
        out_row.push(v);
    }
    Ok(out_row)
}

/// Sort/limit stage: the output permutation of `rows` — ascending by group
/// key when the statement has no ORDER BY, otherwise by its ORDER BY terms —
/// truncated to the statement's LIMIT.
pub(crate) fn output_order(
    stmt: &SelectStatement,
    rows: &[Vec<Value>],
    group_keys: &[Vec<Value>],
) -> Result<Vec<usize>, EngineError> {
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if stmt.order_by.is_empty() {
        order.sort_by(|&a, &b| group_keys[a].cmp(&group_keys[b]));
    } else {
        let mut sort_specs: Vec<(usize, SortOrder)> = Vec::new();
        for ob in &stmt.order_by {
            let idx = if let Ok(ordinal) = ob.target.parse::<usize>() {
                if ordinal == 0 || ordinal > stmt.items.len() {
                    return Err(EngineError::plan(format!(
                        "ORDER BY ordinal {ordinal} out of range"
                    )));
                }
                ordinal - 1
            } else {
                // Match by alias/output name first, then by bare column name.
                stmt.items
                    .iter()
                    .position(|i| i.output_name().eq_ignore_ascii_case(&ob.target))
                    .or_else(|| {
                        stmt.items.iter().position(|i| {
                            matches!(&i.expr, SelectExpr::Column(c) if c.eq_ignore_ascii_case(&ob.target))
                        })
                    })
                    .ok_or_else(|| {
                        EngineError::plan(format!("ORDER BY column '{}' is not in the SELECT list", ob.target))
                    })?
            };
            sort_specs.push((idx, ob.order));
        }
        order.sort_by(|&a, &b| {
            for (idx, dir) in &sort_specs {
                let cmp = rows[a][*idx].cmp(&rows[b][*idx]);
                let cmp = match dir {
                    SortOrder::Asc => cmp,
                    SortOrder::Desc => cmp.reverse(),
                };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    if let Some(limit) = stmt.limit {
        order.truncate(limit);
    }
    Ok(order)
}

/// Validates the statement against the table schema.
pub(crate) fn validate(table: &Table, stmt: &SelectStatement) -> Result<(), EngineError> {
    if stmt.items.is_empty() {
        return Err(EngineError::plan("SELECT list is empty"));
    }
    if !stmt.table.eq_ignore_ascii_case(table.name()) {
        return Err(EngineError::plan(format!(
            "statement selects FROM {} but was executed against table {}",
            stmt.table,
            table.name()
        )));
    }
    let schema = table.schema();
    if let Some(pred) = &stmt.where_clause {
        let t = pred.validate(schema)?;
        if !matches!(t, DataType::Bool | DataType::Null) {
            return Err(EngineError::plan(format!("WHERE clause must be boolean, found {t}")));
        }
    }
    for g in &stmt.group_by {
        schema.resolve(g)?;
    }
    for item in &stmt.items {
        match &item.expr {
            SelectExpr::Column(name) => {
                schema.resolve(name)?;
                if !stmt.group_by.iter().any(|g| g.eq_ignore_ascii_case(name)) {
                    return Err(EngineError::plan(format!(
                        "column '{name}' must appear in GROUP BY or be aggregated"
                    )));
                }
            }
            SelectExpr::Scalar(e) => {
                e.validate(schema)?;
                for c in e.columns() {
                    if !stmt.group_by.iter().any(|g| g.eq_ignore_ascii_case(&c)) {
                        return Err(EngineError::plan(format!(
                            "column '{c}' must appear in GROUP BY or be aggregated"
                        )));
                    }
                }
            }
            SelectExpr::Aggregate(call) => {
                if let AggregateArg::Expr(e) = &call.arg {
                    let t = e.validate(schema)?;
                    if !t.is_numeric() && t != DataType::Null && t != DataType::Bool {
                        return Err(EngineError::plan(format!(
                            "{}({}) requires a numeric argument, found {t}",
                            call.func, e
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Builds the output schema for a statement over a table.
pub(crate) fn output_schema(table: &Table, stmt: &SelectStatement) -> Result<Schema, EngineError> {
    let mut fields = Vec::with_capacity(stmt.items.len());
    for item in &stmt.items {
        let dtype = match &item.expr {
            SelectExpr::Column(name) => {
                let idx = table.schema().resolve(name)?;
                table.schema().field_at(idx).expect("resolved").dtype
            }
            SelectExpr::Scalar(e) => e.validate(table.schema())?,
            SelectExpr::Aggregate(call) => match call.func {
                crate::ast::AggregateFunc::Count => DataType::Int,
                _ => DataType::Float,
            },
        };
        fields.push(Field::nullable(disambiguate(&fields, item.output_name()), dtype));
    }
    Schema::new(fields).map_err(EngineError::from)
}

/// Appends `_2`, `_3`, ... to duplicate output names so the result schema
/// stays valid when the same aggregate appears twice.
fn disambiguate(existing: &[Field], name: String) -> String {
    if !existing.iter().any(|f| f.name.eq_ignore_ascii_case(&name)) {
        return name;
    }
    let mut n = 2;
    loop {
        let candidate = format!("{name}_{n}");
        if !existing.iter().any(|f| f.name.eq_ignore_ascii_case(&candidate)) {
            return candidate;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::col;
    use std::ops::Not as _;

    fn readings() -> Table {
        let schema = Schema::of(&[
            ("hour", DataType::Int),
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        // hour 0: sensors 1,2 normal; hour 1: sensor 3 is broken (120 degrees)
        t.push_rows(vec![
            vec![Value::Int(0), Value::Int(1), Value::Float(20.0)],
            vec![Value::Int(0), Value::Int(2), Value::Float(22.0)],
            vec![Value::Int(1), Value::Int(1), Value::Float(21.0)],
            vec![Value::Int(1), Value::Int(3), Value::Float(120.0)],
            vec![Value::Int(1), Value::Int(2), Value::Null],
        ])
        .unwrap();
        t
    }

    fn run(sql: &str) -> QueryResult {
        let mut catalog = Catalog::new();
        catalog.register(readings()).unwrap();
        execute_sql(&catalog, sql).unwrap()
    }

    #[test]
    fn group_by_average_with_lineage() {
        let r = run("SELECT hour, avg(temp) FROM readings GROUP BY hour");
        assert_eq!(r.len(), 2);
        assert_eq!(r.value(0, "hour").unwrap(), Value::Int(0));
        assert_eq!(r.value(0, "avg_temp").unwrap(), Value::Float(21.0));
        assert_eq!(r.value(1, "avg_temp").unwrap(), Value::Float(70.5));
        // Lineage: group for hour=1 contains rows 2,3,4 (NULL temp row still
        // belongs to the group).
        assert_eq!(r.inputs_of(1), &[RowId(2), RowId(3), RowId(4)]);
        assert_eq!(r.inputs_of(0), &[RowId(0), RowId(1)]);
        assert!(r.graph.summary().contains("GroupBy(hour)"));
        assert!(r.execution_nanos > 0);
    }

    #[test]
    fn where_clause_filters_rows_and_lineage() {
        let r = run("SELECT hour, avg(temp) FROM readings WHERE sensorid <> 3 GROUP BY hour");
        assert_eq!(r.value(1, "avg_temp").unwrap(), Value::Float(21.0));
        assert_eq!(r.inputs_of(1), &[RowId(2), RowId(4)]);
        assert!(r.graph.summary().contains("Filter"));
    }

    #[test]
    fn no_group_by_returns_single_row() {
        let r = run("SELECT avg(temp), count(*), min(temp), max(temp) FROM readings");
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "count_all").unwrap(), Value::Int(5));
        assert_eq!(r.value(0, "min_temp").unwrap(), Value::Float(20.0));
        assert_eq!(r.value(0, "max_temp").unwrap(), Value::Float(120.0));
        // Even with an always-false filter there is exactly one output row.
        let r = run("SELECT avg(temp) FROM readings WHERE temp > 1000");
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "avg_temp").unwrap(), Value::Null);
    }

    #[test]
    fn group_by_with_empty_filter_is_empty() {
        let r = run("SELECT hour, avg(temp) FROM readings WHERE temp > 1000 GROUP BY hour");
        assert!(r.is_empty());
    }

    #[test]
    fn count_star_vs_count_column() {
        let r = run("SELECT hour, count(*), count(temp) FROM readings GROUP BY hour");
        assert_eq!(r.value(1, "count_all").unwrap(), Value::Int(3));
        assert_eq!(r.value(1, "count_temp").unwrap(), Value::Int(2));
    }

    #[test]
    fn stddev_and_aliases() {
        let r = run("SELECT hour, stddev(temp) AS sd FROM readings GROUP BY hour");
        match r.value(1, "sd").unwrap() {
            // Sample stddev of [21, 120] = sqrt(2 * 49.5^2 / 1) = sqrt(4900.5).
            Value::Float(v) => assert!((v - 4900.5f64.sqrt()).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_by_and_limit() {
        let r =
            run("SELECT hour, avg(temp) AS a FROM readings GROUP BY hour ORDER BY a DESC LIMIT 1");
        assert_eq!(r.len(), 1);
        assert_eq!(r.value(0, "hour").unwrap(), Value::Int(1));
        // Lineage still refers to the surviving group.
        assert_eq!(r.inputs_of(0), &[RowId(2), RowId(3), RowId(4)]);

        let r = run("SELECT hour, avg(temp) FROM readings GROUP BY hour ORDER BY 2 DESC");
        assert_eq!(r.value(0, "hour").unwrap(), Value::Int(1));

        let r = run("SELECT hour, avg(temp) FROM readings GROUP BY hour ORDER BY hour DESC");
        assert_eq!(r.value(0, "hour").unwrap(), Value::Int(1));
    }

    #[test]
    fn default_ordering_is_by_group_key() {
        // Insert groups out of order and confirm deterministic ascending output.
        let schema = Schema::of(&[("g", DataType::Int), ("x", DataType::Float)]);
        let mut t = Table::new("t", schema).unwrap();
        for (g, x) in [(5, 1.0), (1, 2.0), (3, 3.0), (1, 4.0)] {
            t.push_row(vec![Value::Int(g), Value::Float(x)]).unwrap();
        }
        let stmt = parse_select("SELECT g, sum(x) FROM t GROUP BY g").unwrap();
        let r = execute(&t, &stmt, ExecOptions::default()).unwrap();
        let keys: Vec<Value> = (0..r.len()).map(|i| r.value(i, "g").unwrap()).collect();
        assert_eq!(keys, vec![Value::Int(1), Value::Int(3), Value::Int(5)]);
        assert_eq!(r.value(0, "sum_x").unwrap(), Value::Float(6.0));
    }

    #[test]
    fn scalar_select_items_over_group_keys() {
        let r = run("SELECT hour, hour * 30 AS minutes, avg(temp) FROM readings GROUP BY hour");
        assert_eq!(r.value(1, "minutes").unwrap(), Value::Int(30));
    }

    #[test]
    fn multi_column_group_by() {
        let r = run("SELECT hour, sensorid, count(*) FROM readings GROUP BY hour, sensorid");
        assert_eq!(r.len(), 5);
        assert_eq!(r.group_keys[0].len(), 2);
    }

    #[test]
    fn soft_deleted_rows_are_excluded() {
        let mut catalog = Catalog::new();
        catalog.register(readings()).unwrap();
        catalog.table_mut("readings").unwrap().delete_row(RowId(3)).unwrap();
        let r =
            execute_sql(&catalog, "SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        assert_eq!(r.value(1, "avg_temp").unwrap(), Value::Float(21.0));
    }

    #[test]
    fn validation_errors() {
        let mut catalog = Catalog::new();
        catalog.register(readings()).unwrap();
        // Non-grouped column in SELECT.
        assert!(execute_sql(&catalog, "SELECT sensorid, avg(temp) FROM readings GROUP BY hour")
            .is_err());
        // Unknown column.
        assert!(
            execute_sql(&catalog, "SELECT hour, avg(missing) FROM readings GROUP BY hour").is_err()
        );
        // Non-numeric aggregate argument.
        let schema = Schema::of(&[("name", DataType::Str)]);
        let mut t = Table::new("people", schema).unwrap();
        t.push_row(vec![Value::str("x")]).unwrap();
        catalog.register(t).unwrap();
        assert!(execute_sql(&catalog, "SELECT avg(name) FROM people").is_err());
        // Non-boolean WHERE clause.
        assert!(execute_sql(&catalog, "SELECT avg(temp) FROM readings WHERE hour + 1").is_err());
        // Unknown table.
        assert!(execute_sql(&catalog, "SELECT avg(x) FROM nope").is_err());
        // Wrong table for direct execute().
        let stmt = parse_select("SELECT avg(x) FROM other").unwrap();
        assert!(execute(&readings(), &stmt, ExecOptions::default()).is_err());
        // ORDER BY target not in select list.
        assert!(execute_sql(
            &catalog,
            "SELECT hour, avg(temp) FROM readings GROUP BY hour ORDER BY sensorid"
        )
        .is_err());
        // ORDER BY ordinal out of range.
        assert!(execute_sql(
            &catalog,
            "SELECT hour, avg(temp) FROM readings GROUP BY hour ORDER BY 3"
        )
        .is_err());
    }

    #[test]
    fn duplicate_output_names_are_disambiguated() {
        let r = run("SELECT hour, avg(temp), avg(temp) FROM readings GROUP BY hour");
        let names = r.column_names();
        assert_eq!(names[1], "avg_temp");
        assert_eq!(names[2], "avg_temp_2");
    }

    #[test]
    fn lineage_capture_can_be_disabled() {
        let mut catalog = Catalog::new();
        catalog.register(readings()).unwrap();
        let stmt = parse_select("SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let r =
            execute_on_catalog(&catalog, &stmt, ExecOptions { capture_lineage: false }).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.inputs_of(0).is_empty());
        assert_eq!(r.value(0, "avg_temp").unwrap(), Value::Float(21.0));
    }

    #[test]
    fn disjunctive_and_negated_where_vectorize_like_the_scalar_walk() {
        let t = readings();
        let stmt = |sql: &str| parse_select(sql).unwrap();
        for sql in [
            "SELECT hour, avg(temp) FROM readings WHERE sensorid = 3 OR temp < 21.5 GROUP BY hour",
            "SELECT hour, avg(temp) FROM readings WHERE NOT (temp >= 100) GROUP BY hour",
            "SELECT hour, avg(temp) FROM readings WHERE sensorid NOT IN (1, 2) GROUP BY hour",
            "SELECT hour, avg(temp) FROM readings \
             WHERE NOT (sensorid = 3 AND temp > 100) OR hour = 0 GROUP BY hour",
        ] {
            let s = stmt(sql);
            let pred = s.where_clause.as_ref().unwrap();
            assert!(
                dbwipes_storage::CompiledBoolExpr::compile(pred, &t).is_ok(),
                "{sql} should vectorize"
            );
            let vectorized = scan_filter(&t, &s).unwrap();
            let scalar: Vec<RowId> =
                t.visible_row_ids().filter(|&r| pred.matches(&t, r).unwrap()).collect();
            assert_eq!(vectorized, scalar, "{sql}");
        }
    }

    #[test]
    fn query_rewrite_via_additional_filter() {
        let mut catalog = Catalog::new();
        catalog.register(readings()).unwrap();
        let stmt = parse_select("SELECT hour, avg(temp) FROM readings GROUP BY hour").unwrap();
        let cleaned = stmt.with_additional_filter(col("temp").gt_eq(lit_f(100.0)).not());
        let r = execute_on_catalog(&catalog, &cleaned, ExecOptions::default()).unwrap();
        assert_eq!(r.value(1, "avg_temp").unwrap(), Value::Float(21.0));
    }

    fn lit_f(v: f64) -> dbwipes_storage::Expr {
        dbwipes_storage::lit(v)
    }
}

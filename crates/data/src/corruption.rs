//! Generic error injection for controlled experiments.
//!
//! Experiments E5 (precision of ranked provenance vs. traditional
//! provenance) and E8 (Dataset Enumerator ablation) need datasets where the
//! erroneous tuples form a *describable* subpopulation — exactly the
//! setting the paper assumes ("users are seeking precise descriptions of
//! the inputs that caused the errors"). This module builds such datasets:
//! a base table with clean numeric measurements plus a corruption targeting
//! the rows matched by a chosen predicate, shifting their measurement value
//! so that aggregates over them become anomalous.

use crate::truth::GroundTruth;
use dbwipes_storage::{Condition, ConjunctivePredicate, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the generic corrupted-measurements generator.
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    /// Number of rows in the generated table.
    pub num_rows: usize,
    /// Number of groups (the `grp` column ranges over `0..num_groups`); the
    /// experiment queries aggregate per group.
    pub num_groups: i64,
    /// Number of distinct devices (`device` column).
    pub num_devices: i64,
    /// Number of distinct regions (`region` column, categorical).
    pub num_regions: usize,
    /// Devices whose measurements are corrupted.
    pub corrupted_devices: Vec<i64>,
    /// Only measurements in groups `>= corruption_start_group` are corrupted
    /// (so the anomaly is localised in the group dimension too).
    pub corruption_start_group: i64,
    /// Amount added to corrupted measurements.
    pub corruption_shift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            num_rows: 20_000,
            num_groups: 50,
            num_devices: 40,
            num_regions: 5,
            corrupted_devices: vec![7, 23],
            corruption_start_group: 30,
            corruption_shift: 80.0,
            seed: 99,
        }
    }
}

impl CorruptionConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        CorruptionConfig { num_rows: 2_000, ..Default::default() }
    }
}

/// A generated corrupted-measurements dataset.
#[derive(Debug, Clone)]
pub struct CorruptedDataset {
    /// The `measurements` table.
    pub table: Table,
    /// Ground truth for the injected corruption.
    pub truth: GroundTruth,
    /// The configuration used.
    pub config: CorruptionConfig,
}

const REGIONS: &[&str] =
    &["north", "south", "east", "west", "central", "remote", "campus", "plant"];

/// Schema of the generated `measurements` table.
pub fn measurements_schema() -> Schema {
    Schema::of(&[
        ("grp", DataType::Int),
        ("device", DataType::Int),
        ("region", DataType::Str),
        ("load", DataType::Float),
        ("value", DataType::Float),
    ])
}

/// Generates a corrupted-measurements dataset.
pub fn generate_corrupted(config: &CorruptionConfig) -> CorruptedDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Table::new("measurements", measurements_schema()).expect("static schema");
    let mut error_rows = Vec::new();
    let regions = &REGIONS[..config.num_regions.clamp(1, REGIONS.len())];

    for _ in 0..config.num_rows {
        let grp = rng.gen_range(0..config.num_groups.max(1));
        let device = rng.gen_range(0..config.num_devices.max(1));
        let region = regions[(device as usize) % regions.len()];
        let load: f64 = rng.gen_range(0.0..1.0);
        let mut value = 50.0 + 10.0 * load + rng.gen_range(-5.0..5.0);
        let corrupted =
            config.corrupted_devices.contains(&device) && grp >= config.corruption_start_group;
        if corrupted {
            value += config.corruption_shift * (0.8 + 0.4 * rng.gen::<f64>());
        }
        let rid = table
            .push_row(vec![
                Value::Int(grp),
                Value::Int(device),
                Value::str(region),
                Value::Float((load * 1000.0).round() / 1000.0),
                Value::Float((value * 100.0).round() / 100.0),
            ])
            .expect("schema matches");
        if corrupted {
            error_rows.push(rid);
        }
    }

    let true_predicate = ConjunctivePredicate::new(vec![
        Condition::in_set(
            "device",
            config.corrupted_devices.iter().map(|d| Value::Int(*d)).collect(),
        ),
        Condition::at_least("grp", config.corruption_start_group as f64),
    ]);
    let truth = GroundTruth::new(
        error_rows,
        true_predicate,
        format!(
            "devices {:?} shifted by +{} from group {} onwards",
            config.corrupted_devices, config.corruption_shift, config.corruption_start_group
        ),
    );
    CorruptedDataset { table, truth, config: config.clone() }
}

impl CorruptedDataset {
    /// The per-group average query the E5/E8 experiments debug.
    pub fn group_avg_query(&self) -> String {
        "SELECT grp, avg(value) AS avg_value FROM measurements GROUP BY grp ORDER BY grp"
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::RowId;

    #[test]
    fn corruption_matches_ground_truth_predicate() {
        let ds = generate_corrupted(&CorruptionConfig::small());
        assert!(ds.truth.error_count() > 0);
        let score = ds.truth.score_predicate(&ds.table, &ds.truth.true_predicate.clone());
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.recall, 1.0);
    }

    #[test]
    fn corrupted_values_are_shifted() {
        let ds = generate_corrupted(&CorruptionConfig::small());
        for rid in ds.table.visible_row_ids() {
            let value = ds.table.value_by_name(rid, "value").unwrap().as_f64().unwrap();
            if ds.truth.is_error(rid) {
                assert!(value > 100.0, "corrupted value too small: {value}");
            } else {
                assert!(value < 80.0, "clean value too large: {value}");
            }
        }
    }

    #[test]
    fn deterministic_and_configurable() {
        let a = generate_corrupted(&CorruptionConfig::small());
        let b = generate_corrupted(&CorruptionConfig::small());
        assert_eq!(a.table.row(RowId(5)).unwrap(), b.table.row(RowId(5)).unwrap());
        assert_eq!(a.truth.error_rows, b.truth.error_rows);

        let none = generate_corrupted(&CorruptionConfig {
            corrupted_devices: vec![],
            ..CorruptionConfig::small()
        });
        assert_eq!(none.truth.error_count(), 0);
        assert!(a.group_avg_query().contains("GROUP BY grp"));
    }

    #[test]
    fn schema_and_row_count() {
        let config = CorruptionConfig::small();
        let ds = generate_corrupted(&config);
        assert_eq!(ds.table.num_rows(), config.num_rows);
        assert_eq!(ds.table.schema(), &measurements_schema());
        // Regions are clamped to the available list.
        let huge =
            CorruptionConfig { num_regions: 100, num_rows: 100, ..CorruptionConfig::small() };
        let ds = generate_corrupted(&huge);
        assert_eq!(ds.table.num_rows(), 100);
    }
}

//! # dbwipes-data
//!
//! Synthetic datasets for the DBWipes reproduction.
//!
//! The original demo (Wu, Madden, Stonebraker, VLDB 2012) uses two real
//! datasets — the FEC presidential campaign contributions dump and the
//! Intel Lab 54-node sensor trace — neither of which can be bundled here.
//! Instead this crate generates synthetic datasets with the same *shape*
//! (the same schemas, the same anomalies the demo walks through) plus
//! [`GroundTruth`] labels recording exactly which rows were injected as
//! errors, which turns the paper's anecdotal walkthrough into measurable
//! experiments:
//!
//! * [`generate_fec`] — campaign contributions with a cluster of negative
//!   "REATTRIBUTION TO SPOUSE" records around day 500 (Figure 7 / §3.2).
//! * [`generate_sensor`] — 54 sensors with diurnal temperature cycles and a
//!   few failing sensors whose batteries die and whose temperatures climb
//!   above 100°F (Figures 4 and 6).
//! * [`generate_corrupted`] — a generic measurements table with a
//!   predicate-describable corruption, used by the precision (E5) and
//!   enumerator-ablation (E8) experiments.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod corruption;
pub mod fec;
pub mod sensor;
pub mod truth;

pub use corruption::{generate_corrupted, CorruptedDataset, CorruptionConfig};
pub use fec::{generate_fec, FecConfig, FecDataset, REATTRIBUTION_MEMO};
pub use sensor::{generate_sensor, SensorConfig, SensorDataset};
pub use truth::{GroundTruth, PredicateScore};

//! Synthetic FEC presidential-campaign contributions dataset.
//!
//! The demo's first dataset is the 2012 FEC presidential contributions dump
//! (§3.1), and the walkthrough (§3.2, Figure 7) analyses the *2008* data:
//! the journalist plots McCain's daily donation totals, notices a negative
//! spike around day 500 of the campaign, zooms in, highlights the negative
//! donations, and DBWipes returns a predicate referencing the memo string
//! "REATTRIBUTION TO SPOUSE".
//!
//! We cannot ship the real FEC dump, so this module generates a synthetic
//! `contributions` table with the same *shape*: per-candidate daily
//! donation volumes with campaign-event spikes, realistic categorical
//! attributes (state, city, occupation), and a cluster of negative
//! reattribution records for one candidate around one day. The generator
//! also returns [`GroundTruth`] naming exactly the injected rows, so the
//! walkthrough can be scored rather than eyeballed.

use crate::truth::GroundTruth;
use dbwipes_storage::{Condition, ConjunctivePredicate, DataType, RowId, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The memo string used for the injected anomaly — taken verbatim from the
/// paper's walkthrough.
pub const REATTRIBUTION_MEMO: &str = "REATTRIBUTION TO SPOUSE";

/// Configuration of the synthetic FEC generator.
#[derive(Debug, Clone)]
pub struct FecConfig {
    /// Total number of contribution rows to generate.
    pub num_contributions: usize,
    /// Number of campaign days covered (day column ranges over `0..num_days`).
    pub num_days: i64,
    /// Candidate receiving the injected reattribution anomaly.
    pub target_candidate: String,
    /// Campaign day around which the reattribution cluster is centred
    /// (the paper's "strange negative spike ... around day 500").
    pub reattribution_day: i64,
    /// Number of reattribution (negative amount) rows injected.
    pub reattribution_count: usize,
    /// Half-width, in days, of the reattribution cluster.
    pub reattribution_spread: i64,
    /// RNG seed (the generator is fully deterministic given the config).
    pub seed: u64,
}

impl Default for FecConfig {
    fn default() -> Self {
        FecConfig {
            num_contributions: 50_000,
            num_days: 600,
            target_candidate: "McCain".to_string(),
            reattribution_day: 500,
            reattribution_count: 400,
            reattribution_spread: 3,
            seed: 2012,
        }
    }
}

impl FecConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        FecConfig { num_contributions: 4_000, reattribution_count: 80, ..Default::default() }
    }
}

/// A generated FEC dataset: the `contributions` table plus ground truth.
#[derive(Debug, Clone)]
pub struct FecDataset {
    /// The `contributions` table.
    pub table: Table,
    /// Which rows were injected as reattribution errors and the predicate
    /// that describes them.
    pub truth: GroundTruth,
    /// The configuration used.
    pub config: FecConfig,
}

const CANDIDATES: &[&str] = &["McCain", "Obama", "Romney", "Paul", "Clinton"];
const STATES: &[&str] = &["CA", "NY", "TX", "MA", "FL", "WA", "IL", "OH", "VA", "PA"];
const CITIES: &[&str] = &[
    "San Francisco",
    "New York",
    "Austin",
    "Boston",
    "Miami",
    "Seattle",
    "Chicago",
    "Columbus",
    "Richmond",
    "Philadelphia",
];
const OCCUPATIONS: &[&str] = &[
    "ENGINEER",
    "TEACHER",
    "ATTORNEY",
    "PHYSICIAN",
    "RETIRED",
    "HOMEMAKER",
    "CEO",
    "CONSULTANT",
    "PROFESSOR",
    "NOT EMPLOYED",
];
const ORDINARY_MEMOS: &[&str] =
    &["", "", "", "", "ONLINE DONATION", "EVENT TICKET", "MAIL IN", "PAYROLL DEDUCTION"];

/// The schema of the generated `contributions` table.
pub fn contributions_schema() -> Schema {
    Schema::of(&[
        ("candidate", DataType::Str),
        ("state", DataType::Str),
        ("city", DataType::Str),
        ("occupation", DataType::Str),
        ("amount", DataType::Float),
        ("day", DataType::Int),
        ("memo", DataType::Str),
    ])
}

/// Generates the synthetic FEC contributions dataset.
pub fn generate_fec(config: &FecConfig) -> FecDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Table::new("contributions", contributions_schema()).expect("static schema");

    // Campaign-event spike days: donation volume and size jump on these days
    // (the walkthrough notes "each contribution spike correlates with a
    // major campaign event").
    let num_events = 6;
    let event_days: Vec<i64> =
        (1..=num_events).map(|k| k * config.num_days / (num_events + 1)).collect();

    let ordinary_rows = config.num_contributions.saturating_sub(config.reattribution_count);
    for _ in 0..ordinary_rows {
        let candidate = CANDIDATES[rng.gen_range(0..CANDIDATES.len())];
        let loc = rng.gen_range(0..STATES.len());
        let occupation = OCCUPATIONS[rng.gen_range(0..OCCUPATIONS.len())];
        // Bias days towards campaign events.
        let day = if rng.gen_bool(0.25) {
            let event = event_days[rng.gen_range(0..event_days.len())];
            (event + rng.gen_range(-2..=2)).clamp(0, config.num_days - 1)
        } else {
            rng.gen_range(0..config.num_days)
        };
        // Donation amounts: mostly small, occasionally the legal maximum.
        let amount = if rng.gen_bool(0.05) {
            2300.0
        } else {
            let base: f64 = rng.gen_range(10.0..500.0);
            (base * 4.0).round() / 4.0
        };
        let memo = ORDINARY_MEMOS[rng.gen_range(0..ORDINARY_MEMOS.len())];
        table
            .push_row(vec![
                Value::str(candidate),
                Value::str(STATES[loc]),
                Value::str(CITIES[loc]),
                Value::str(occupation),
                Value::Float(amount),
                Value::Int(day),
                Value::str(memo),
            ])
            .expect("schema matches");
    }

    // Inject the reattribution cluster: negative donations to the target
    // candidate, concentrated around `reattribution_day`, from wealthy
    // occupations (the walkthrough's "high profile individuals (e.g., CEOs)").
    let mut error_rows = Vec::with_capacity(config.reattribution_count);
    for _ in 0..config.reattribution_count {
        let day = (config.reattribution_day
            + rng.gen_range(-config.reattribution_spread..=config.reattribution_spread))
        .clamp(0, config.num_days - 1);
        let loc = rng.gen_range(0..STATES.len());
        let occupation = if rng.gen_bool(0.7) { "CEO" } else { "ATTORNEY" };
        let amount = -(rng.gen_range(1000.0..2300.0f64).round());
        let rid = table
            .push_row(vec![
                Value::str(config.target_candidate.clone()),
                Value::str(STATES[loc]),
                Value::str(CITIES[loc]),
                Value::str(occupation),
                Value::Float(amount),
                Value::Int(day),
                Value::str(REATTRIBUTION_MEMO),
            ])
            .expect("schema matches");
        error_rows.push(rid);
    }

    let true_predicate =
        ConjunctivePredicate::new(vec![Condition::contains("memo", "REATTRIBUTION")]);
    let truth = GroundTruth::new(
        error_rows,
        true_predicate,
        format!(
            "{} negative '{}' contributions to {} around day {}",
            config.reattribution_count,
            REATTRIBUTION_MEMO,
            config.target_candidate,
            config.reattribution_day
        ),
    );
    FecDataset { table, truth, config: config.clone() }
}

impl FecDataset {
    /// The SQL query the walkthrough starts from: the target candidate's
    /// total received donations per day (Figure 7).
    pub fn daily_total_query(&self) -> String {
        format!(
            "SELECT day, sum(amount) AS total FROM contributions WHERE candidate = '{}' GROUP BY day ORDER BY day",
            self.config.target_candidate
        )
    }

    /// Row ids of the injected reattribution records.
    pub fn error_rows(&self) -> Vec<RowId> {
        self.truth.error_rows.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::col;

    #[test]
    fn generates_requested_row_count_and_schema() {
        let ds = generate_fec(&FecConfig::small());
        assert_eq!(ds.table.num_rows(), FecConfig::small().num_contributions);
        assert_eq!(ds.table.schema(), &contributions_schema());
        assert_eq!(ds.truth.error_count(), FecConfig::small().reattribution_count);
        assert_eq!(ds.error_rows().len(), FecConfig::small().reattribution_count);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_fec(&FecConfig::small());
        let b = generate_fec(&FecConfig::small());
        assert_eq!(a.table.num_rows(), b.table.num_rows());
        for rid in [RowId(0), RowId(100), RowId(3999)] {
            assert_eq!(a.table.row(rid).unwrap(), b.table.row(rid).unwrap());
        }
        let c = generate_fec(&FecConfig { seed: 7, ..FecConfig::small() });
        assert_ne!(a.table.row(RowId(0)).unwrap(), c.table.row(RowId(0)).unwrap());
    }

    #[test]
    fn injected_rows_are_negative_reattributions_near_the_target_day() {
        let config = FecConfig::small();
        let ds = generate_fec(&config);
        for rid in ds.error_rows() {
            let amount = ds.table.value_by_name(rid, "amount").unwrap().as_f64().unwrap();
            assert!(amount < 0.0);
            let memo = ds.table.value_by_name(rid, "memo").unwrap();
            assert_eq!(memo, Value::str(REATTRIBUTION_MEMO));
            let day = ds.table.value_by_name(rid, "day").unwrap().as_i64().unwrap();
            assert!((day - config.reattribution_day).abs() <= config.reattribution_spread);
            let cand = ds.table.value_by_name(rid, "candidate").unwrap();
            assert_eq!(cand, Value::str("McCain"));
        }
    }

    #[test]
    fn ordinary_rows_have_positive_amounts_and_no_reattribution_memo() {
        let ds = generate_fec(&FecConfig::small());
        let negatives = col("amount").lt(dbwipes_storage::lit(0.0)).filter(&ds.table).unwrap();
        // Every negative row is an injected error and vice versa.
        assert_eq!(negatives.len(), ds.truth.error_count());
        for rid in negatives {
            assert!(ds.truth.is_error(rid));
        }
        let memo_match = ds.truth.true_predicate.matching_rows(&ds.table);
        assert_eq!(memo_match.len(), ds.truth.error_count());
    }

    #[test]
    fn ground_truth_predicate_scores_perfectly() {
        let ds = generate_fec(&FecConfig::small());
        let score = ds.truth.score_predicate(&ds.table, &ds.truth.true_predicate.clone());
        assert_eq!(score.precision, 1.0);
        assert_eq!(score.recall, 1.0);
    }

    #[test]
    fn daily_total_query_mentions_candidate_and_grouping() {
        let ds = generate_fec(&FecConfig::small());
        let q = ds.daily_total_query();
        assert!(q.contains("candidate = 'McCain'"));
        assert!(q.contains("GROUP BY day"));
        assert!(q.contains("sum(amount)"));
    }

    #[test]
    fn amounts_and_days_are_in_range() {
        let config = FecConfig::small();
        let ds = generate_fec(&config);
        for rid in ds.table.visible_row_ids() {
            let day = ds.table.value_by_name(rid, "day").unwrap().as_i64().unwrap();
            assert!(day >= 0 && day < config.num_days);
            let amount = ds.table.value_by_name(rid, "amount").unwrap().as_f64().unwrap();
            assert!(amount.abs() <= 2300.0 + 1e-9);
        }
    }
}

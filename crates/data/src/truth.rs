//! Ground-truth bookkeeping for synthetic datasets.
//!
//! The real FEC and Intel Lab datasets do not come with labels saying which
//! tuples are erroneous; the paper's authors found the anomalies by hand.
//! Because our datasets are generated, we know exactly which rows were
//! injected as errors and what predicate describes them — which is what
//! allows experiments E5/E8 to report precision and recall numbers instead
//! of anecdotes.

use dbwipes_storage::{ConjunctivePredicate, RowId, Table};
use std::collections::BTreeSet;

/// Ground truth attached to a generated dataset.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Rows that were injected as erroneous.
    pub error_rows: BTreeSet<RowId>,
    /// The predicate that exactly describes the injected errors, e.g.
    /// `memo LIKE '%REATTRIBUTION%'` or `sensorid IN (15, 18, 49)`.
    pub true_predicate: ConjunctivePredicate,
    /// Human-readable description of the injected anomaly.
    pub description: String,
}

impl GroundTruth {
    /// Creates a ground truth record.
    pub fn new(
        error_rows: impl IntoIterator<Item = RowId>,
        true_predicate: ConjunctivePredicate,
        description: impl Into<String>,
    ) -> Self {
        GroundTruth {
            error_rows: error_rows.into_iter().collect(),
            true_predicate,
            description: description.into(),
        }
    }

    /// Number of injected error rows.
    pub fn error_count(&self) -> usize {
        self.error_rows.len()
    }

    /// True when `row` was injected as an error.
    pub fn is_error(&self, row: RowId) -> bool {
        self.error_rows.contains(&row)
    }

    /// Precision/recall/F1 of a candidate predicate measured against the
    /// injected error rows, evaluated over the visible rows of `table`.
    pub fn score_predicate(
        &self,
        table: &Table,
        predicate: &ConjunctivePredicate,
    ) -> PredicateScore {
        let matched = predicate.matching_rows(table);
        let tp = matched.iter().filter(|r| self.error_rows.contains(r)).count();
        let precision = if matched.is_empty() { 0.0 } else { tp as f64 / matched.len() as f64 };
        let recall =
            if self.error_rows.is_empty() { 0.0 } else { tp as f64 / self.error_rows.len() as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PredicateScore { precision, recall, f1, matched: matched.len() }
    }

    /// Precision/recall of an arbitrary returned row set.
    pub fn score_rows(&self, rows: &[RowId]) -> PredicateScore {
        let tp = rows.iter().filter(|r| self.error_rows.contains(r)).count();
        let precision = if rows.is_empty() { 0.0 } else { tp as f64 / rows.len() as f64 };
        let recall =
            if self.error_rows.is_empty() { 0.0 } else { tp as f64 / self.error_rows.len() as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PredicateScore { precision, recall, f1, matched: rows.len() }
    }
}

/// Precision / recall / F1 of a predicate or row set against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredicateScore {
    /// Fraction of matched rows that are truly erroneous.
    pub precision: f64,
    /// Fraction of truly erroneous rows that are matched.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Number of rows matched / returned.
    pub matched: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::{Condition, DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::of(&[("id", DataType::Int), ("amount", DataType::Float)]);
        let mut t = Table::new("t", schema).unwrap();
        for i in 0..10 {
            let amount = if i < 3 { -100.0 } else { 50.0 };
            t.push_row(vec![Value::Int(i), Value::Float(amount)]).unwrap();
        }
        t
    }

    fn truth() -> GroundTruth {
        GroundTruth::new(
            (0..3).map(RowId),
            ConjunctivePredicate::new(vec![Condition::at_most("amount", 0.0)]),
            "negative amounts",
        )
    }

    #[test]
    fn basic_accessors() {
        let gt = truth();
        assert_eq!(gt.error_count(), 3);
        assert!(gt.is_error(RowId(0)));
        assert!(!gt.is_error(RowId(5)));
        assert_eq!(gt.description, "negative amounts");
    }

    #[test]
    fn scoring_the_true_predicate_is_perfect() {
        let t = table();
        let gt = truth();
        let s = gt.score_predicate(&t, &gt.true_predicate.clone());
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.matched, 3);
    }

    #[test]
    fn scoring_an_over_broad_predicate_loses_precision() {
        let t = table();
        let gt = truth();
        let everything = ConjunctivePredicate::always_true();
        let s = gt.score_predicate(&t, &everything);
        assert!((s.precision - 0.3).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.matched, 10);
    }

    #[test]
    fn scoring_row_sets() {
        let gt = truth();
        let s = gt.score_rows(&[RowId(0), RowId(1), RowId(9)]);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
        let s = gt.score_rows(&[]);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.f1, 0.0);
        let empty =
            GroundTruth::new(Vec::<RowId>::new(), ConjunctivePredicate::always_true(), "none");
        assert_eq!(empty.score_rows(&[RowId(1)]).recall, 0.0);
    }
}

//! Synthetic Intel Lab sensor dataset.
//!
//! The demo's second dataset is the Intel Lab deployment: "2.3 million
//! sensor readings collected from 54 sensors across one month. The sensors
//! gather temperature, light, humidity, and voltage data about twice per
//! minute" (§3.1). The anomaly the paper uses throughout (§1, Figure 4,
//! Figure 6) is the classic failure mode of that deployment: as a sensor's
//! battery voltage drops, its temperature readings climb far above 100°F,
//! which inflates the per-window average and standard deviation.
//!
//! This generator reproduces that shape: diurnal temperature cycles per
//! sensor, correlated humidity/light, slowly decaying voltage, and a
//! configurable set of failing sensors whose voltage collapses and whose
//! temperature ramps to ~120°F after a failure point. Ground truth records
//! exactly which readings are corrupted.

use crate::truth::GroundTruth;
use dbwipes_storage::{Condition, ConjunctivePredicate, DataType, RowId, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic sensor generator.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of sensors in the deployment (the Intel Lab had 54).
    pub num_sensors: usize,
    /// Total number of readings to generate across all sensors.
    pub num_readings: usize,
    /// Seconds between consecutive readings of one sensor (~30s in the
    /// original deployment).
    pub reading_interval_secs: i64,
    /// Ids of sensors that fail during the trace.
    pub failing_sensors: Vec<i64>,
    /// Fraction of the trace (0..1) after which failing sensors start
    /// producing corrupted readings.
    pub failure_start: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            num_sensors: 54,
            num_readings: 100_000,
            reading_interval_secs: 31,
            failing_sensors: vec![15, 18, 49],
            failure_start: 0.6,
            seed: 54,
        }
    }
}

impl SensorConfig {
    /// A small configuration for fast unit tests.
    pub fn small() -> Self {
        SensorConfig { num_readings: 6_000, ..Default::default() }
    }

    /// A configuration sized like the real deployment (2.3M readings).
    pub fn full_scale() -> Self {
        SensorConfig { num_readings: 2_300_000, ..Default::default() }
    }
}

/// A generated sensor dataset: the `readings` table plus ground truth.
#[derive(Debug, Clone)]
pub struct SensorDataset {
    /// The `readings` table.
    pub table: Table,
    /// Which readings are corrupted and the predicate describing the
    /// failing sensors.
    pub truth: GroundTruth,
    /// The configuration used.
    pub config: SensorConfig,
}

/// The schema of the generated `readings` table.
///
/// `window` is the index of the 30-minute window a reading falls in — the
/// grouping attribute of the paper's running example query ("the average
/// temperature in 30 minute windows").
pub fn readings_schema() -> Schema {
    Schema::of(&[
        ("sensorid", DataType::Int),
        ("epoch", DataType::Timestamp),
        ("hour", DataType::Int),
        ("window", DataType::Int),
        ("temp", DataType::Float),
        ("humidity", DataType::Float),
        ("light", DataType::Float),
        ("voltage", DataType::Float),
    ])
}

/// Generates the synthetic sensor dataset.
pub fn generate_sensor(config: &SensorConfig) -> SensorDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Table::new("readings", readings_schema()).expect("static schema");
    let mut error_rows = Vec::new();

    let readings_per_sensor = (config.num_readings / config.num_sensors.max(1)).max(1);
    let failure_tick = (readings_per_sensor as f64 * config.failure_start) as usize;

    for sensor in 0..config.num_sensors as i64 {
        let failing = config.failing_sensors.contains(&sensor);
        // Per-sensor biases so sensors are distinguishable.
        let temp_offset: f64 = rng.gen_range(-1.5..1.5);
        let humidity_offset: f64 = rng.gen_range(-4.0..4.0);
        for tick in 0..readings_per_sensor {
            let epoch = tick as i64 * config.reading_interval_secs;
            let hour = epoch / 3600;
            let window = epoch / 1800;
            let day_fraction = (epoch % 86_400) as f64 / 86_400.0;
            // Diurnal cycle: coolest at ~4am, warmest mid-afternoon.
            let diurnal = 4.0 * (std::f64::consts::TAU * (day_fraction - 0.33)).sin();
            let noise: f64 = rng.gen_range(-0.6..0.6);
            let mut temp = 21.0 + temp_offset + diurnal + noise;
            let humidity = (45.0 + humidity_offset - 0.8 * diurnal + rng.gen_range(-2.0..2.0))
                .clamp(5.0, 95.0);
            let light = if (0.25..0.75).contains(&day_fraction) {
                rng.gen_range(300.0..600.0)
            } else {
                rng.gen_range(0.0..5.0)
            };
            let mut voltage = 2.75 - 0.15 * (tick as f64 / readings_per_sensor as f64);

            let corrupted = failing && tick >= failure_tick;
            if corrupted {
                // Battery collapse: voltage drops sharply and the reported
                // temperature ramps towards ~122°F with extra jitter.
                let progress = (tick - failure_tick) as f64
                    / (readings_per_sensor - failure_tick).max(1) as f64;
                voltage = 2.0 - 0.4 * progress + rng.gen_range(-0.05..0.05);
                temp = 100.0 + 22.0 * progress + rng.gen_range(-3.0..3.0);
            }

            let rid = table
                .push_row(vec![
                    Value::Int(sensor),
                    Value::Timestamp(epoch),
                    Value::Int(hour),
                    Value::Int(window),
                    Value::Float(round2(temp)),
                    Value::Float(round2(humidity)),
                    Value::Float(round2(light)),
                    Value::Float(round3(voltage)),
                ])
                .expect("schema matches");
            if corrupted {
                error_rows.push(rid);
            }
        }
    }

    let true_predicate = ConjunctivePredicate::new(vec![Condition::in_set(
        "sensorid",
        config.failing_sensors.iter().map(|s| Value::Int(*s)).collect(),
    )]);
    let truth = GroundTruth::new(
        error_rows,
        true_predicate,
        format!(
            "sensors {:?} fail at {:.0}% of the trace and report temperatures above 100F",
            config.failing_sensors,
            config.failure_start * 100.0
        ),
    );
    SensorDataset { table, truth, config: config.clone() }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

impl SensorDataset {
    /// The running-example query of the paper: average and standard
    /// deviation of temperature per 30-minute window (Figure 4, left).
    pub fn window_query(&self) -> String {
        "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp FROM readings GROUP BY window ORDER BY window".to_string()
    }

    /// Row ids of the corrupted readings.
    pub fn error_rows(&self) -> Vec<RowId> {
        self.truth.error_rows.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_sensors_and_schema() {
        let config = SensorConfig::small();
        let ds = generate_sensor(&config);
        assert_eq!(ds.table.schema(), &readings_schema());
        // Every sensor contributes the same number of readings.
        let per_sensor = config.num_readings / config.num_sensors;
        assert_eq!(ds.table.num_rows(), per_sensor * config.num_sensors);
        let ids: std::collections::BTreeSet<i64> = ds
            .table
            .visible_row_ids()
            .map(|r| ds.table.value_by_name(r, "sensorid").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ids.len(), config.num_sensors);
    }

    #[test]
    fn corrupted_rows_belong_to_failing_sensors_after_failure_start() {
        let config = SensorConfig::small();
        let ds = generate_sensor(&config);
        assert!(ds.truth.error_count() > 0);
        for rid in ds.error_rows() {
            let sensor = ds.table.value_by_name(rid, "sensorid").unwrap().as_i64().unwrap();
            assert!(config.failing_sensors.contains(&sensor));
            let temp = ds.table.value_by_name(rid, "temp").unwrap().as_f64().unwrap();
            assert!(temp > 90.0, "corrupted temp should be anomalous, got {temp}");
            let voltage = ds.table.value_by_name(rid, "voltage").unwrap().as_f64().unwrap();
            assert!(voltage < 2.2);
        }
    }

    #[test]
    fn healthy_rows_stay_in_normal_ranges() {
        let ds = generate_sensor(&SensorConfig::small());
        for rid in ds.table.visible_row_ids() {
            if ds.truth.is_error(rid) {
                continue;
            }
            let temp = ds.table.value_by_name(rid, "temp").unwrap().as_f64().unwrap();
            assert!((10.0..40.0).contains(&temp), "healthy temp out of range: {temp}");
            let voltage = ds.table.value_by_name(rid, "voltage").unwrap().as_f64().unwrap();
            assert!(voltage > 2.5);
            let humidity = ds.table.value_by_name(rid, "humidity").unwrap().as_f64().unwrap();
            assert!((5.0..=95.0).contains(&humidity));
        }
    }

    #[test]
    fn truth_predicate_covers_all_errors() {
        let ds = generate_sensor(&SensorConfig::small());
        let score = ds.truth.score_predicate(&ds.table, &ds.truth.true_predicate.clone());
        // The sensorid predicate matches every corrupted row (recall 1.0) but
        // also the failing sensors' pre-failure rows, so precision < 1.
        assert_eq!(score.recall, 1.0);
        assert!(score.precision > 0.3 && score.precision < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_sensor(&SensorConfig::small());
        let b = generate_sensor(&SensorConfig::small());
        assert_eq!(a.table.row(RowId(17)).unwrap(), b.table.row(RowId(17)).unwrap());
        assert_eq!(a.truth.error_rows, b.truth.error_rows);
    }

    #[test]
    fn window_column_matches_epoch() {
        let ds = generate_sensor(&SensorConfig::small());
        for rid in ds.table.visible_row_ids().take(200) {
            let epoch = ds.table.value_by_name(rid, "epoch").unwrap().as_i64().unwrap();
            let window = ds.table.value_by_name(rid, "window").unwrap().as_i64().unwrap();
            let hour = ds.table.value_by_name(rid, "hour").unwrap().as_i64().unwrap();
            assert_eq!(window, epoch / 1800);
            assert_eq!(hour, epoch / 3600);
        }
        assert!(ds.window_query().contains("GROUP BY window"));
    }

    #[test]
    fn no_failing_sensors_means_no_errors() {
        let config = SensorConfig { failing_sensors: vec![], ..SensorConfig::small() };
        let ds = generate_sensor(&config);
        assert_eq!(ds.truth.error_count(), 0);
    }
}

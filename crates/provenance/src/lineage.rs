//! Fine-grained provenance (lineage): which input rows produced which
//! output group.
//!
//! For the single-block aggregate queries DBWipes supports
//! (`SELECT agg(x) FROM t WHERE p GROUP BY g`), the lineage of an output
//! row is exactly the set of input rows that passed the WHERE clause and
//! fell into that group. The paper's Preprocessor consumes this mapping to
//! compute `F`, the inputs of the user-selected suspicious outputs `S`
//! (§2.2.2); the introduction's complaint that fine-grained provenance
//! "returns all of the sensor readings (easily several thousand)" is the
//! observation that these sets are large — which the E5 experiment
//! quantifies.

use dbwipes_storage::RowId;
use std::collections::{BTreeMap, BTreeSet};

/// Index of an output row (group) within a query result.
pub type GroupIdx = usize;

/// Fine-grained lineage for one query execution.
#[derive(Debug, Clone, Default)]
pub struct Lineage {
    /// For each output group, the input rows that contributed to it.
    groups: Vec<Vec<RowId>>,
    /// Name of the table the row ids refer to.
    source_table: String,
}

impl Lineage {
    /// Creates an empty lineage over the named source table.
    pub fn new(source_table: impl Into<String>) -> Self {
        Lineage { groups: Vec::new(), source_table: source_table.into() }
    }

    /// The table the recorded [`RowId`]s belong to.
    pub fn source_table(&self) -> &str {
        &self.source_table
    }

    /// Appends a new output group and returns its index.
    pub fn add_group(&mut self) -> GroupIdx {
        self.groups.push(Vec::new());
        self.groups.len() - 1
    }

    /// Records that input `row` contributed to output `group`.
    ///
    /// Panics if the group has not been added; the executor always creates
    /// groups before attributing rows to them.
    pub fn record(&mut self, group: GroupIdx, row: RowId) {
        self.groups[group].push(row);
    }

    /// Records a whole set of contributing rows for `group`.
    pub fn record_all(&mut self, group: GroupIdx, rows: impl IntoIterator<Item = RowId>) {
        self.groups[group].extend(rows);
    }

    /// Number of output groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The input rows of one output group (empty slice if out of range).
    pub fn inputs_of(&self, group: GroupIdx) -> &[RowId] {
        self.groups.get(group).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The distinct input rows of a set of output groups — the paper's `F`.
    pub fn inputs_of_groups(&self, groups: &[GroupIdx]) -> Vec<RowId> {
        let mut set = BTreeSet::new();
        for &g in groups {
            set.extend(self.inputs_of(g).iter().copied());
        }
        set.into_iter().collect()
    }

    /// The distinct input rows across all output groups.
    pub fn all_inputs(&self) -> Vec<RowId> {
        let groups: Vec<GroupIdx> = (0..self.group_count()).collect();
        self.inputs_of_groups(&groups)
    }

    /// Total number of (group, input) attributions recorded.
    pub fn attribution_count(&self) -> usize {
        self.groups.iter().map(|g| g.len()).sum()
    }

    /// Builds the inverted index: input row → output groups it contributed
    /// to. With a single GROUP BY each row maps to at most one group, but
    /// the structure supports the general case.
    pub fn invert(&self) -> BTreeMap<RowId, Vec<GroupIdx>> {
        let mut index: BTreeMap<RowId, Vec<GroupIdx>> = BTreeMap::new();
        for (g, rows) in self.groups.iter().enumerate() {
            for &r in rows {
                index.entry(r).or_default().push(g);
            }
        }
        index
    }

    /// Average number of inputs per output group — the "precision" problem
    /// the paper motivates: returning this many tuples per suspicious output
    /// is what the ranked system improves on.
    pub fn mean_inputs_per_group(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.attribution_count() as f64 / self.groups.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Lineage {
        let mut l = Lineage::new("sensors");
        let g0 = l.add_group();
        let g1 = l.add_group();
        let g2 = l.add_group();
        l.record_all(g0, [RowId(0), RowId(1), RowId(2)]);
        l.record(g1, RowId(3));
        l.record(g1, RowId(4));
        // group 2 intentionally empty (a group whose rows were all NULL).
        let _ = g2;
        l
    }

    #[test]
    fn groups_and_inputs() {
        let l = sample();
        assert_eq!(l.source_table(), "sensors");
        assert_eq!(l.group_count(), 3);
        assert_eq!(l.inputs_of(0), &[RowId(0), RowId(1), RowId(2)]);
        assert_eq!(l.inputs_of(1), &[RowId(3), RowId(4)]);
        assert!(l.inputs_of(2).is_empty());
        assert!(l.inputs_of(99).is_empty());
        assert_eq!(l.attribution_count(), 5);
    }

    #[test]
    fn union_of_groups_is_deduplicated_and_sorted() {
        let mut l = sample();
        l.record(2, RowId(1)); // row 1 now contributes to two groups
        let f = l.inputs_of_groups(&[0, 2]);
        assert_eq!(f, vec![RowId(0), RowId(1), RowId(2)]);
        assert_eq!(l.all_inputs(), vec![RowId(0), RowId(1), RowId(2), RowId(3), RowId(4)]);
    }

    #[test]
    fn inverted_index() {
        let mut l = sample();
        l.record(2, RowId(1));
        let idx = l.invert();
        assert_eq!(idx[&RowId(1)], vec![0, 2]);
        assert_eq!(idx[&RowId(3)], vec![1]);
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn mean_inputs_per_group() {
        let l = sample();
        assert!((l.mean_inputs_per_group() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(Lineage::new("t").mean_inputs_per_group(), 0.0);
    }
}

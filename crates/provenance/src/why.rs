//! Why-provenance and provenance precision statistics.
//!
//! Traditional provenance systems answer "why is this output here?" with a
//! set of input tuples. DBWipes' criticism (paper §1) is that for aggregate
//! outputs that set has very low *precision*: it contains every
//! contributing tuple, not just the erroneous ones. This module provides a
//! small representation of such answers plus the precision/recall scoring
//! used by experiment E5 to compare DBWipes against the traditional
//! approaches it is motivated by.

use dbwipes_storage::RowId;
use std::collections::BTreeSet;

/// The answer a provenance query returns: a set of input rows claimed to
/// explain the selected outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvenanceAnswer {
    rows: BTreeSet<RowId>,
}

impl ProvenanceAnswer {
    /// Creates an answer from any collection of row ids (duplicates are
    /// collapsed).
    pub fn new(rows: impl IntoIterator<Item = RowId>) -> Self {
        ProvenanceAnswer { rows: rows.into_iter().collect() }
    }

    /// The empty answer.
    pub fn empty() -> Self {
        ProvenanceAnswer::default()
    }

    /// The rows in the answer, ascending.
    pub fn rows(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.iter().copied()
    }

    /// Number of rows in the answer.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the answer contains no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when the answer contains `row`.
    pub fn contains(&self, row: RowId) -> bool {
        self.rows.contains(&row)
    }

    /// Scores the answer against a ground-truth set of erroneous rows.
    pub fn score(&self, ground_truth: &BTreeSet<RowId>) -> PrecisionRecall {
        let tp = self.rows.intersection(ground_truth).count();
        PrecisionRecall::from_counts(tp, self.rows.len(), ground_truth.len())
    }
}

/// Precision / recall / F1 of a returned tuple set against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of returned rows that are truly erroneous.
    pub precision: f64,
    /// Fraction of truly erroneous rows that were returned.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
}

impl PrecisionRecall {
    /// Computes the metrics from raw counts.
    ///
    /// `true_positives` is clamped to the smaller of the two set sizes so a
    /// caller cannot construct an impossible score.
    pub fn from_counts(true_positives: usize, returned: usize, relevant: usize) -> Self {
        let tp = true_positives.min(returned).min(relevant) as f64;
        let precision = if returned == 0 { 0.0 } else { tp / returned as f64 };
        let recall = if relevant == 0 { 0.0 } else { tp / relevant as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrecisionRecall { precision, recall, f1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(ids: &[usize]) -> BTreeSet<RowId> {
        ids.iter().map(|&i| RowId(i)).collect()
    }

    #[test]
    fn answer_deduplicates_and_sorts() {
        let a = ProvenanceAnswer::new([RowId(3), RowId(1), RowId(3)]);
        assert_eq!(a.len(), 2);
        assert!(a.contains(RowId(1)));
        assert!(!a.contains(RowId(2)));
        assert_eq!(a.rows().collect::<Vec<_>>(), vec![RowId(1), RowId(3)]);
        assert!(ProvenanceAnswer::empty().is_empty());
    }

    #[test]
    fn perfect_answer_scores_one() {
        let a = ProvenanceAnswer::new([RowId(1), RowId(2)]);
        let s = a.score(&truth(&[1, 2]));
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn full_lineage_answer_has_low_precision() {
        // The "traditional fine-grained provenance" situation: return all
        // 1000 contributing rows when only 10 are actually erroneous.
        let a = ProvenanceAnswer::new((0..1000).map(RowId));
        let s = a.score(&truth(&(0..10).collect::<Vec<_>>()));
        assert!((s.precision - 0.01).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
        assert!(s.f1 < 0.02);
    }

    #[test]
    fn empty_cases() {
        let s = ProvenanceAnswer::empty().score(&truth(&[1]));
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
        let s = ProvenanceAnswer::new([RowId(1)]).score(&BTreeSet::new());
        assert_eq!(s.recall, 0.0);
    }

    #[test]
    fn impossible_counts_are_clamped() {
        let s = PrecisionRecall::from_counts(10, 2, 5);
        assert!(s.precision <= 1.0 && s.recall <= 1.0);
    }
}

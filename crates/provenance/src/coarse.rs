//! Coarse-grained provenance: the operator graph of a query execution.
//!
//! The paper's introduction contrasts coarse-grained provenance ("the graph
//! of operators that were executed to generate the result") with
//! fine-grained lineage. Coarse provenance is uninformative for debugging a
//! single aggregate — every input goes through the same operators — but
//! DBWipes still records it so the dashboard can show users *how* a result
//! was computed, and so experiment E5 can report its (lack of) precision.

use std::fmt;

/// The kind of a relational operator in the executed plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperatorKind {
    /// Base-table scan.
    Scan {
        /// Name of the table scanned.
        table: String,
    },
    /// Row filter (WHERE clause).
    Filter {
        /// Rendered predicate.
        predicate: String,
    },
    /// Grouping on one or more columns.
    GroupBy {
        /// Group-by column names.
        columns: Vec<String>,
    },
    /// Aggregate evaluation.
    Aggregate {
        /// Rendered aggregate calls, e.g. `avg(temp)`.
        aggregates: Vec<String>,
    },
    /// Final projection / column selection.
    Project {
        /// Output column names.
        columns: Vec<String>,
    },
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorKind::Scan { table } => write!(f, "Scan({table})"),
            OperatorKind::Filter { predicate } => write!(f, "Filter({predicate})"),
            OperatorKind::GroupBy { columns } => write!(f, "GroupBy({})", columns.join(", ")),
            OperatorKind::Aggregate { aggregates } => {
                write!(f, "Aggregate({})", aggregates.join(", "))
            }
            OperatorKind::Project { columns } => write!(f, "Project({})", columns.join(", ")),
        }
    }
}

/// A node in the operator graph.
#[derive(Debug, Clone)]
pub struct OperatorNode {
    /// What the operator does.
    pub kind: OperatorKind,
    /// Number of rows flowing out of this operator during execution.
    pub output_rows: usize,
}

/// The coarse-grained provenance of one query execution: a linear pipeline
/// of operators (DBWipes queries are single-block, so the "graph" is a
/// chain from scan to projection).
#[derive(Debug, Clone, Default)]
pub struct OperatorGraph {
    nodes: Vec<OperatorNode>,
}

impl OperatorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        OperatorGraph::default()
    }

    /// Appends an operator to the pipeline (source first).
    pub fn push(&mut self, kind: OperatorKind, output_rows: usize) {
        self.nodes.push(OperatorNode { kind, output_rows });
    }

    /// The operators in execution order (scan first).
    pub fn nodes(&self) -> &[OperatorNode] {
        &self.nodes
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no operators were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Renders the pipeline as a one-line summary, e.g.
    /// `Scan(readings) -> Filter(temp > 0) -> GroupBy(hour) -> Aggregate(avg(temp))`.
    pub fn summary(&self) -> String {
        self.nodes.iter().map(|n| n.kind.to_string()).collect::<Vec<_>>().join(" -> ")
    }

    /// Renders a multi-line explanation with per-operator row counts, the
    /// form shown by the dashboard's "explain" view.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "{:indent$}{} [rows={}]\n",
                "",
                node.kind,
                node.output_rows,
                indent = i * 2
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OperatorGraph {
        let mut g = OperatorGraph::new();
        g.push(OperatorKind::Scan { table: "readings".into() }, 1000);
        g.push(OperatorKind::Filter { predicate: "temp IS NOT NULL".into() }, 990);
        g.push(OperatorKind::GroupBy { columns: vec!["window".into()] }, 48);
        g.push(
            OperatorKind::Aggregate { aggregates: vec!["avg(temp)".into(), "stddev(temp)".into()] },
            48,
        );
        g.push(OperatorKind::Project { columns: vec!["window".into(), "avg_temp".into()] }, 48);
        g
    }

    #[test]
    fn summary_is_a_chain() {
        let g = sample();
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
        let s = g.summary();
        assert!(s.starts_with("Scan(readings) -> Filter"));
        assert!(s.contains("GroupBy(window)"));
        assert!(s.ends_with("Project(window, avg_temp)"));
    }

    #[test]
    fn explain_includes_row_counts_and_indentation() {
        let g = sample();
        let e = g.explain();
        assert!(e.contains("[rows=1000]"));
        assert!(e.contains("[rows=48]"));
        assert!(e.lines().count() == 5);
        // Each level is indented two spaces more than the previous.
        let lines: Vec<&str> = e.lines().collect();
        assert!(lines[1].starts_with("  "));
        assert!(lines[2].starts_with("    "));
    }

    #[test]
    fn empty_graph() {
        let g = OperatorGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.summary(), "");
        assert_eq!(g.explain(), "");
        assert!(g.nodes().is_empty());
    }

    #[test]
    fn operator_kind_display() {
        assert_eq!(OperatorKind::Scan { table: "t".into() }.to_string(), "Scan(t)");
        assert_eq!(
            OperatorKind::Aggregate { aggregates: vec!["sum(x)".into()] }.to_string(),
            "Aggregate(sum(x))"
        );
    }
}

//! # dbwipes-provenance
//!
//! The provenance substrate of the DBWipes reproduction: fine-grained
//! lineage ([`Lineage`]) mapping aggregate output groups to the input rows
//! that produced them, coarse-grained operator graphs
//! ([`OperatorGraph`]), and the tuple-set answers / precision-recall
//! scoring ([`ProvenanceAnswer`], [`PrecisionRecall`]) used to compare
//! DBWipes' ranked provenance against the traditional provenance baselines
//! the paper argues against (§1, §4).
//!
//! Lineage is *captured* by `dbwipes-engine` during query execution and
//! *consumed* by `dbwipes-core`'s Preprocessor.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod coarse;
pub mod lineage;
pub mod why;

pub use coarse::{OperatorGraph, OperatorKind, OperatorNode};
pub use lineage::{GroupIdx, Lineage};
pub use why::{PrecisionRecall, ProvenanceAnswer};

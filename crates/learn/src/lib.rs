//! # dbwipes-learn
//!
//! The machine-learning substrate of the DBWipes reproduction. The paper's
//! backend (§2.2.2) leans on three learning components, all implemented
//! here from scratch over relational feature vectors:
//!
//! * **Decision trees** ([`DecisionTree`]) with gini / gain-ratio splitting
//!   and error-based pruning — the Predicate Enumerator trains several per
//!   candidate dataset and converts their positive leaf paths into the
//!   ranked predicates shown to the user.
//! * **CN2-SD subgroup discovery** ([`discover_subgroups`]) — the Dataset
//!   Enumerator extends the user's example tuples D′ with subgroups of
//!   inputs that strongly influence the error metric.
//! * **K-means** ([`kmeans()`]) and **naive Bayes** ([`NaiveBayes`]) — the
//!   Dataset Enumerator's D′ cleaning step removes example tuples that are
//!   not self-consistent.
//!
//! [`FeatureSpace`] bridges the relational and the learned worlds: it
//! extracts dense feature vectors from table rows and translates learned
//! splits back into human-readable [`Condition`](dbwipes_storage::Condition)s.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod features;
pub mod kmeans;
pub mod metrics;
pub mod naive_bayes;
pub mod subgroup;
pub mod tree;

pub use features::{Dataset, FeatureDef, FeatureKind, FeatureSpace, FeatureValue};
pub use kmeans::{kmeans, to_points, KMeansResult};
pub use naive_bayes::NaiveBayes;
pub use subgroup::{discover_subgroups, Subgroup, SubgroupConfig};
pub use tree::{DecisionTree, PathTest, Rule, SplitCriterion, SplitTest, TreeConfig, TreeNode};

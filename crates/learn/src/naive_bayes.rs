//! Gaussian / categorical naive Bayes classifier.
//!
//! The Dataset Enumerator's cleaning step also experiments with
//! "classification based techniques that train classifiers on D′ and remove
//! elements that are not consistent with the classifier" (paper §2.2.2).
//! This classifier is trained on the user's example tuples (positive) vs. a
//! sample of the remaining inputs (negative) and is then used to score how
//! *consistent* each example is with the bulk of D′; low-likelihood examples
//! are treated as accidental selections and dropped.

use crate::features::{Dataset, FeatureValue};

/// Per-feature sufficient statistics for one class.
#[derive(Debug, Clone)]
enum FeatureModel {
    /// Gaussian with mean and variance (variance floored for stability).
    Gaussian { mean: f64, variance: f64 },
    /// Categorical with Laplace-smoothed probabilities per category index.
    Categorical { probs: Vec<f64>, fallback: f64 },
}

/// Class-conditional model: prior plus one model per feature.
#[derive(Debug, Clone)]
struct ClassModel {
    log_prior: f64,
    features: Vec<FeatureModel>,
}

/// A trained binary naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    positive: ClassModel,
    negative: ClassModel,
}

/// The variance floor used for Gaussian features; prevents a feature with a
/// single observed value from producing infinite log-likelihoods.
const MIN_VARIANCE: f64 = 1e-6;

impl NaiveBayes {
    /// Trains the classifier. Instances with `labels[i] == true` form the
    /// positive class. Returns `None` when either class is empty.
    pub fn train(dataset: &Dataset, labels: &[bool]) -> Option<NaiveBayes> {
        assert_eq!(dataset.len(), labels.len(), "labels must align with instances");
        let pos_idx: Vec<usize> = (0..dataset.len()).filter(|&i| labels[i]).collect();
        let neg_idx: Vec<usize> = (0..dataset.len()).filter(|&i| !labels[i]).collect();
        if pos_idx.is_empty() || neg_idx.is_empty() {
            return None;
        }
        let total = dataset.len() as f64;
        Some(NaiveBayes {
            positive: fit_class(dataset, &pos_idx, pos_idx.len() as f64 / total),
            negative: fit_class(dataset, &neg_idx, neg_idx.len() as f64 / total),
        })
    }

    /// Log-likelihood ratio `log P(x | +) + log P(+) − log P(x | −) − log P(−)`.
    /// Positive values favour the positive class.
    pub fn log_odds(&self, instance: &[FeatureValue]) -> f64 {
        class_log_likelihood(&self.positive, instance)
            - class_log_likelihood(&self.negative, instance)
    }

    /// Predicts the class of an instance.
    pub fn predict(&self, instance: &[FeatureValue]) -> bool {
        self.log_odds(instance) > 0.0
    }

    /// Classification accuracy over a dataset.
    pub fn accuracy(&self, dataset: &Dataset, labels: &[bool]) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset
            .instances
            .iter()
            .zip(labels)
            .filter(|(inst, &l)| self.predict(inst) == l)
            .count();
        correct as f64 / dataset.len() as f64
    }
}

fn fit_class(dataset: &Dataset, indices: &[usize], prior: f64) -> ClassModel {
    let num_features = dataset.instances.first().map(|i| i.len()).unwrap_or(0);
    let mut features = Vec::with_capacity(num_features);
    for j in 0..num_features {
        // Decide whether the feature behaves numerically or categorically in
        // this dataset by looking at the first present value.
        let mut numeric: Vec<f64> = Vec::new();
        let mut categories: Vec<usize> = Vec::new();
        for &i in indices {
            match dataset.instances[i].get(j) {
                Some(FeatureValue::Num(v)) => numeric.push(*v),
                Some(FeatureValue::Cat(c)) => categories.push(*c),
                _ => {}
            }
        }
        if !numeric.is_empty() {
            let n = numeric.len() as f64;
            let mean = numeric.iter().sum::<f64>() / n;
            let variance =
                (numeric.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).max(MIN_VARIANCE);
            features.push(FeatureModel::Gaussian { mean, variance });
        } else {
            let max_cat = categories.iter().copied().max().unwrap_or(0);
            let mut counts = vec![0.0f64; max_cat + 1];
            for c in &categories {
                counts[*c] += 1.0;
            }
            let total = categories.len() as f64;
            let k = counts.len() as f64;
            let probs: Vec<f64> = counts.iter().map(|c| (c + 1.0) / (total + k)).collect();
            let fallback = 1.0 / (total + k);
            features.push(FeatureModel::Categorical { probs, fallback });
        }
    }
    ClassModel { log_prior: prior.max(1e-12).ln(), features }
}

fn class_log_likelihood(model: &ClassModel, instance: &[FeatureValue]) -> f64 {
    let mut ll = model.log_prior;
    for (j, fm) in model.features.iter().enumerate() {
        let v = instance.get(j).copied().unwrap_or(FeatureValue::Missing);
        match (fm, v) {
            (FeatureModel::Gaussian { mean, variance }, FeatureValue::Num(x)) => {
                ll += -0.5 * ((x - mean).powi(2) / variance)
                    - 0.5 * (2.0 * std::f64::consts::PI * variance).ln();
            }
            (FeatureModel::Categorical { probs, fallback }, FeatureValue::Cat(c)) => {
                ll += probs.get(c).copied().unwrap_or(*fallback).max(1e-12).ln();
            }
            // Missing or mismatched values contribute nothing (equivalent to
            // marginalising the feature out).
            _ => {}
        }
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::RowId;

    fn dataset(points: Vec<(f64, usize)>) -> (Dataset, Vec<bool>) {
        // Feature 0: numeric, feature 1: categorical. Label = numeric > 50.
        let labels: Vec<bool> = points.iter().map(|(x, _)| *x > 50.0).collect();
        let instances = points
            .into_iter()
            .map(|(x, c)| vec![FeatureValue::Num(x), FeatureValue::Cat(c)])
            .collect::<Vec<_>>();
        let row_ids = (0..instances.len()).map(RowId).collect();
        (Dataset { instances, row_ids }, labels)
    }

    fn training_data() -> (Dataset, Vec<bool>) {
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push((20.0 + (i % 7) as f64, i % 2)); // negatives near 20
        }
        for i in 0..40 {
            pts.push((100.0 + (i % 7) as f64, i % 3)); // positives near 100
        }
        dataset(pts)
    }

    #[test]
    fn separates_gaussian_classes() {
        let (ds, labels) = training_data();
        let nb = NaiveBayes::train(&ds, &labels).unwrap();
        assert!(nb.accuracy(&ds, &labels) > 0.95);
        assert!(nb.predict(&[FeatureValue::Num(105.0), FeatureValue::Cat(0)]));
        assert!(!nb.predict(&[FeatureValue::Num(22.0), FeatureValue::Cat(0)]));
        assert!(nb.log_odds(&[FeatureValue::Num(105.0), FeatureValue::Cat(0)]) > 0.0);
    }

    #[test]
    fn missing_features_fall_back_to_priors() {
        let (ds, labels) = training_data();
        let nb = NaiveBayes::train(&ds, &labels).unwrap();
        // With all features missing the decision reduces to the priors,
        // which are balanced here, so |log odds| is tiny.
        let odds = nb.log_odds(&[FeatureValue::Missing, FeatureValue::Missing]);
        assert!(odds.abs() < 1e-9);
        // Unknown category index uses the smoothed fallback, not a panic.
        let _ = nb.predict(&[FeatureValue::Num(100.0), FeatureValue::Cat(99)]);
    }

    #[test]
    fn empty_class_returns_none() {
        let (ds, _) = training_data();
        assert!(NaiveBayes::train(&ds, &vec![true; ds.len()]).is_none());
        assert!(NaiveBayes::train(&ds, &vec![false; ds.len()]).is_none());
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let instances = vec![
            vec![FeatureValue::Num(1.0)],
            vec![FeatureValue::Num(1.0)],
            vec![FeatureValue::Num(1.0)],
            vec![FeatureValue::Num(2.0)],
        ];
        let ds = Dataset { instances, row_ids: (0..4).map(RowId).collect() };
        let labels = vec![true, true, false, false];
        let nb = NaiveBayes::train(&ds, &labels).unwrap();
        let odds = nb.log_odds(&[FeatureValue::Num(1.0)]);
        assert!(odds.is_finite());
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn mismatched_labels_panic() {
        let (ds, _) = training_data();
        NaiveBayes::train(&ds, &[true]);
    }
}

//! K-means clustering over numeric feature vectors.
//!
//! The Dataset Enumerator "cleans D′ by identifying a self consistent
//! subset. We are currently experimenting with clustering (e.g., K-means)"
//! (paper §2.2.2): the user-highlighted example tuples D′ may contain
//! accidental selections, and k-means lets the enumerator keep only the
//! dominant cluster of examples before extending it.

use crate::features::{Dataset, FeatureValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids (k × d).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment of each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Index of the largest cluster (ties broken by lower index).
    pub fn dominant_cluster(&self) -> usize {
        let sizes = self.cluster_sizes();
        sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Indices of the points assigned to `cluster`.
    pub fn members_of(&self, cluster: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|(_, &a)| a == cluster).map(|(i, _)| i).collect()
    }
}

/// Converts a [`Dataset`] into dense numeric points, replacing categorical
/// values by their index and missing values by the column mean, and
/// standardising every column to zero mean / unit variance so that columns
/// with large magnitudes (timestamps, donation amounts) do not dominate the
/// distance metric.
pub fn to_points(dataset: &Dataset) -> Vec<Vec<f64>> {
    let n = dataset.len();
    if n == 0 {
        return Vec::new();
    }
    let d = dataset.instances[0].len();
    let mut points = vec![vec![0.0; d]; n];
    for j in 0..d {
        // First pass: mean of present values.
        let mut sum = 0.0;
        let mut count = 0.0;
        for inst in &dataset.instances {
            match inst.get(j) {
                Some(FeatureValue::Num(v)) => {
                    sum += v;
                    count += 1.0;
                }
                Some(FeatureValue::Cat(c)) => {
                    sum += *c as f64;
                    count += 1.0;
                }
                _ => {}
            }
        }
        let mean = if count > 0.0 { sum / count } else { 0.0 };
        for (i, inst) in dataset.instances.iter().enumerate() {
            points[i][j] = match inst.get(j) {
                Some(FeatureValue::Num(v)) => *v,
                Some(FeatureValue::Cat(c)) => *c as f64,
                _ => mean,
            };
        }
        // Second pass: standardise.
        let var = points.iter().map(|p| (p[j] - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        if sd > 1e-12 {
            for p in &mut points {
                p[j] = (p[j] - mean) / sd;
            }
        } else {
            for p in &mut points {
                p[j] = 0.0;
            }
        }
    }
    points
}

fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ initialisation.
///
/// `k` is clamped to the number of points; an empty input yields an empty
/// result. The `seed` makes runs reproducible across the experiment harness.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iterations: usize, seed: u64) -> KMeansResult {
    if points.is_empty() || k == 0 {
        return KMeansResult {
            centroids: Vec::new(),
            assignments: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| centroids.iter().map(|c| distance_sq(p, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = dists.iter().sum();
        let next = if total <= f64::EPSILON {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, d) in dists.iter().enumerate() {
                if target < *d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
    }

    let d = points[0].len();
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iterations.max(1) {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    distance_sq(p, &centroids[a]).total_cmp(&distance_sq(p, &centroids[b]))
                })
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (j, v) in p.iter().enumerate() {
                sums[assignments[i]][j] += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centroids[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia =
        points.iter().zip(&assignments).map(|(p, &a)| distance_sq(p, &centroids[a])).sum();
    KMeansResult { centroids, assignments, inertia, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::RowId;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f64 * 0.01;
            points.push(vec![0.0 + jitter, 0.0 - jitter]);
        }
        for i in 0..10 {
            let jitter = (i % 5) as f64 * 0.01;
            points.push(vec![10.0 + jitter, 10.0 - jitter]);
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs();
        let result = kmeans(&points, 2, 50, 7);
        assert_eq!(result.centroids.len(), 2);
        assert_eq!(result.assignments.len(), 40);
        // All points of each blob share a cluster.
        let first = result.assignments[0];
        assert!(result.assignments[..30].iter().all(|&a| a == first));
        let second = result.assignments[30];
        assert_ne!(first, second);
        assert!(result.assignments[30..].iter().all(|&a| a == second));
        // The dominant cluster is the 30-point blob.
        assert_eq!(result.dominant_cluster(), first);
        assert_eq!(result.members_of(first).len(), 30);
        assert_eq!(result.cluster_sizes().iter().sum::<usize>(), 40);
        assert!(result.inertia < 1.0);
        assert!(result.iterations >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let points = two_blobs();
        let a = kmeans(&points, 2, 50, 42);
        let b = kmeans(&points, 2, 50, 42);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(kmeans(&[], 3, 10, 1).assignments.is_empty());
        let one = vec![vec![1.0, 2.0]];
        let r = kmeans(&one, 5, 10, 1);
        assert_eq!(r.centroids.len(), 1);
        assert_eq!(r.assignments, vec![0]);
        let r = kmeans(&one, 0, 10, 1);
        assert!(r.centroids.is_empty());
        // Identical points: must not panic or loop forever.
        let same = vec![vec![1.0, 1.0]; 10];
        let r = kmeans(&same, 3, 10, 1);
        assert_eq!(r.assignments.len(), 10);
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn to_points_standardises_and_fills_missing() {
        let dataset = Dataset {
            instances: vec![
                vec![FeatureValue::Num(10.0), FeatureValue::Cat(0)],
                vec![FeatureValue::Num(20.0), FeatureValue::Cat(1)],
                vec![FeatureValue::Missing, FeatureValue::Cat(1)],
            ],
            row_ids: vec![RowId(0), RowId(1), RowId(2)],
        };
        let points = to_points(&dataset);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].len(), 2);
        // Missing value was replaced by the mean, i.e. standardised to ~0 ...
        assert!(points[2][0].abs() < 1e-9);
        // ... and each column has roughly zero mean.
        let mean0: f64 = points.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-9);
        // Constant columns become all zeros rather than NaN.
        let constant = Dataset {
            instances: vec![vec![FeatureValue::Num(5.0)], vec![FeatureValue::Num(5.0)]],
            row_ids: vec![RowId(0), RowId(1)],
        };
        let p = to_points(&constant);
        assert!(p.iter().all(|r| r[0] == 0.0));
        assert!(to_points(&Dataset { instances: vec![], row_ids: vec![] }).is_empty());
    }
}

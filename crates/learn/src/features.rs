//! Feature extraction from relational rows.
//!
//! The Predicate Enumerator and Dataset Enumerator (paper §2.2.2) learn
//! models over the *input tuples* of an aggregate query: decision trees
//! that separate candidate error tuples from the rest, subgroup discovery
//! over the same attributes, k-means over numeric attributes. This module
//! converts table rows into the dense feature vectors those learners
//! consume, while remembering enough about each feature (its column name,
//! its categorical dictionary) to translate learned splits *back* into
//! human-readable [`Condition`]s — the predicates DBWipes shows the user.

use dbwipes_storage::{Condition, DataType, RowId, Table, Value};

/// The kind of a learned feature.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureKind {
    /// A numeric attribute (int, float, timestamp, bool as 0/1).
    Numeric,
    /// A categorical attribute with a dictionary of observed values.
    Categorical {
        /// Distinct values observed when the space was built; category
        /// index `i` corresponds to `values[i]`.
        values: Vec<Value>,
    },
}

/// One feature: the table column it came from plus its kind.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDef {
    /// Source column name.
    pub column: String,
    /// Numeric or categorical.
    pub kind: FeatureKind,
}

/// A single cell of a feature vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureValue {
    /// Numeric value.
    Num(f64),
    /// Categorical value (index into the feature's dictionary).
    Cat(usize),
    /// NULL or out-of-dictionary value.
    Missing,
}

impl FeatureValue {
    /// The numeric value, if any.
    pub fn as_num(self) -> Option<f64> {
        match self {
            FeatureValue::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The category index, if any.
    pub fn as_cat(self) -> Option<usize> {
        match self {
            FeatureValue::Cat(c) => Some(c),
            _ => None,
        }
    }

    /// True when the value is missing.
    pub fn is_missing(self) -> bool {
        matches!(self, FeatureValue::Missing)
    }
}

/// The feature space: an ordered list of features over a table.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureSpace {
    features: Vec<FeatureDef>,
}

/// The default cap on the number of distinct values a string column may
/// have before it is dropped from the feature space (very high-cardinality
/// text columns such as free-form memos are handled by the substring
/// conditions the predicate enumerator generates separately).
pub const DEFAULT_MAX_CATEGORIES: usize = 64;

impl FeatureSpace {
    /// Builds a feature space from the given columns of a table, using the
    /// provided rows to populate categorical dictionaries.
    ///
    /// String columns with more than `max_categories` distinct values among
    /// `rows` are skipped. Unknown column names are skipped silently so
    /// callers can pass "all columns except the aggregate argument" without
    /// fuss.
    pub fn build(
        table: &Table,
        columns: &[String],
        rows: &[RowId],
        max_categories: usize,
    ) -> FeatureSpace {
        let mut features = Vec::new();
        for name in columns {
            let Some(idx) = table.schema().index_of(name) else { continue };
            let field = table.schema().field_at(idx).expect("index resolved");
            match field.dtype {
                DataType::Int | DataType::Float | DataType::Timestamp | DataType::Bool => {
                    features.push(FeatureDef {
                        column: field.name.clone(),
                        kind: FeatureKind::Numeric,
                    });
                }
                DataType::Str => {
                    let mut values: Vec<Value> = Vec::new();
                    let mut too_many = false;
                    for &rid in rows {
                        if let Ok(v) = table.value(rid, idx) {
                            if v.is_null() {
                                continue;
                            }
                            if !values.contains(&v) {
                                values.push(v);
                                if values.len() > max_categories {
                                    too_many = true;
                                    break;
                                }
                            }
                        }
                    }
                    if !too_many && !values.is_empty() {
                        values.sort();
                        features.push(FeatureDef {
                            column: field.name.clone(),
                            kind: FeatureKind::Categorical { values },
                        });
                    }
                }
                DataType::Null => {}
            }
        }
        FeatureSpace { features }
    }

    /// Builds a feature space over every column except those named in
    /// `exclude`, with the default category cap.
    pub fn build_excluding(table: &Table, exclude: &[String], rows: &[RowId]) -> FeatureSpace {
        let columns: Vec<String> = table
            .schema()
            .names()
            .into_iter()
            .filter(|n| !exclude.iter().any(|e| e.eq_ignore_ascii_case(n)))
            .collect();
        FeatureSpace::build(table, &columns, rows, DEFAULT_MAX_CATEGORIES)
    }

    /// The feature definitions, in order.
    pub fn features(&self) -> &[FeatureDef] {
        &self.features
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the space has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Index of a feature by column name.
    pub fn index_of(&self, column: &str) -> Option<usize> {
        self.features.iter().position(|f| f.column.eq_ignore_ascii_case(column))
    }

    /// Extracts the feature vector of a single row.
    pub fn extract_row(&self, table: &Table, row: RowId) -> Vec<FeatureValue> {
        self.features
            .iter()
            .map(|f| {
                let v = match table.value_by_name(row, &f.column) {
                    Ok(v) => v,
                    Err(_) => return FeatureValue::Missing,
                };
                if v.is_null() {
                    return FeatureValue::Missing;
                }
                match &f.kind {
                    FeatureKind::Numeric => {
                        v.as_f64().map(FeatureValue::Num).unwrap_or(FeatureValue::Missing)
                    }
                    FeatureKind::Categorical { values } => values
                        .iter()
                        .position(|c| *c == v)
                        .map(FeatureValue::Cat)
                        .unwrap_or(FeatureValue::Missing),
                }
            })
            .collect()
    }

    /// Extracts a dataset (feature matrix) for the given rows.
    pub fn extract(&self, table: &Table, rows: &[RowId]) -> Dataset {
        Dataset {
            instances: rows.iter().map(|&r| self.extract_row(table, r)).collect(),
            row_ids: rows.to_vec(),
        }
    }

    /// Translates a learned numeric threshold or categorical test back into
    /// a human-readable [`Condition`]. `upper=true` means `column <= value`.
    pub fn numeric_condition(
        &self,
        feature: usize,
        threshold: f64,
        upper: bool,
    ) -> Option<Condition> {
        let def = self.features.get(feature)?;
        if !matches!(def.kind, FeatureKind::Numeric) {
            return None;
        }
        Some(if upper {
            Condition::at_most(def.column.clone(), threshold)
        } else {
            Condition::above(def.column.clone(), threshold)
        })
    }

    /// Translates a categorical equality/inequality test into a
    /// [`Condition`].
    pub fn categorical_condition(
        &self,
        feature: usize,
        category: usize,
        equal: bool,
    ) -> Option<Condition> {
        let def = self.features.get(feature)?;
        let FeatureKind::Categorical { values } = &def.kind else { return None };
        let value = values.get(category)?.clone();
        Some(if equal {
            Condition::equals(def.column.clone(), value)
        } else {
            Condition::not_equals(def.column.clone(), value)
        })
    }
}

/// A dense feature matrix extracted from a table.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// One feature vector per row, aligned with `row_ids`.
    pub instances: Vec<Vec<FeatureValue>>,
    /// Source row ids.
    pub row_ids: Vec<RowId>,
}

impl Dataset {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the dataset has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_storage::Schema;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("room", DataType::Str),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(1), Value::Float(20.0), Value::str("lab"), Value::str("a")],
            vec![Value::Int(2), Value::Float(21.0), Value::str("lab"), Value::str("b")],
            vec![Value::Int(3), Value::Float(120.0), Value::str("kitchen"), Value::str("c")],
            vec![Value::Int(3), Value::Null, Value::str("office"), Value::str("d")],
        ])
        .unwrap();
        t
    }

    fn all_rows(t: &Table) -> Vec<RowId> {
        t.visible_row_ids().collect()
    }

    #[test]
    fn builds_numeric_and_categorical_features() {
        let t = table();
        let rows = all_rows(&t);
        let space =
            FeatureSpace::build(&t, &["sensorid".into(), "temp".into(), "room".into()], &rows, 16);
        assert_eq!(space.len(), 3);
        assert!(!space.is_empty());
        assert_eq!(space.features()[0].kind, FeatureKind::Numeric);
        match &space.features()[2].kind {
            FeatureKind::Categorical { values } => {
                assert_eq!(values.len(), 3);
                assert!(values.contains(&Value::str("lab")));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(space.index_of("TEMP"), Some(1));
        assert_eq!(space.index_of("nope"), None);
    }

    #[test]
    fn high_cardinality_and_unknown_columns_are_skipped() {
        let t = table();
        let rows = all_rows(&t);
        // memo has 4 distinct values; cap of 2 drops it.
        let space = FeatureSpace::build(&t, &["memo".into(), "ghost".into()], &rows, 2);
        assert!(space.is_empty());
        let space = FeatureSpace::build_excluding(&t, &["temp".into()], &rows);
        assert!(space.index_of("temp").is_none());
        assert!(space.index_of("memo").is_some());
    }

    #[test]
    fn extraction_handles_nulls_and_unknown_categories() {
        let t = table();
        let rows = all_rows(&t);
        let space = FeatureSpace::build(&t, &["temp".into(), "room".into()], &rows[..3], 16);
        let ds = space.extract(&t, &rows);
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.instances[0][0], FeatureValue::Num(20.0));
        // Row 3 has NULL temp -> Missing, and "office" was not in the
        // dictionary rows -> Missing.
        assert!(ds.instances[3][0].is_missing());
        assert!(ds.instances[3][1].is_missing());
        assert_eq!(ds.row_ids[3], RowId(3));
        assert_eq!(ds.instances[2][1].as_cat(), Some(0)); // "kitchen" sorts first
        assert_eq!(ds.instances[0][0].as_num(), Some(20.0));
        assert_eq!(ds.instances[0][1].as_num(), None);
    }

    #[test]
    fn conditions_round_trip_feature_indices() {
        let t = table();
        let rows = all_rows(&t);
        let space = FeatureSpace::build(&t, &["temp".into(), "room".into()], &rows, 16);
        let c = space.numeric_condition(0, 100.0, false).unwrap();
        assert_eq!(c.to_string(), "temp > 100.0000");
        let c = space.numeric_condition(0, 100.0, true).unwrap();
        assert_eq!(c.to_string(), "temp <= 100.0000");
        assert!(space.numeric_condition(1, 1.0, true).is_none());
        assert!(space.numeric_condition(9, 1.0, true).is_none());

        let c = space.categorical_condition(1, 0, true).unwrap();
        assert_eq!(c.to_string(), "room = 'kitchen'");
        let c = space.categorical_condition(1, 1, false).unwrap();
        assert_eq!(c.to_string(), "room <> 'lab'");
        assert!(space.categorical_condition(0, 0, true).is_none());
        assert!(space.categorical_condition(1, 99, true).is_none());
    }
}

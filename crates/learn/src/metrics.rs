//! Impurity and rule-quality measures shared by the learners.

/// Gini impurity of a binary split node with `pos` positive and `neg`
/// negative examples: `1 - p⁺² - p⁻²`. Zero for a pure node, 0.5 for a
/// perfectly mixed one.
pub fn gini(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n <= 0.0 {
        return 0.0;
    }
    let p = pos / n;
    let q = neg / n;
    1.0 - p * p - q * q
}

/// Binary entropy in bits of a node with `pos` / `neg` examples.
pub fn entropy(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for c in [pos, neg] {
        if c > 0.0 {
            let p = c / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Weighted impurity of a two-way split under a given impurity function.
pub fn split_impurity(impurity: fn(f64, f64) -> f64, left: (f64, f64), right: (f64, f64)) -> f64 {
    let n = left.0 + left.1 + right.0 + right.1;
    if n <= 0.0 {
        return 0.0;
    }
    let nl = left.0 + left.1;
    let nr = right.0 + right.1;
    (nl / n) * impurity(left.0, left.1) + (nr / n) * impurity(right.0, right.1)
}

/// Information gain of a two-way split (entropy based).
pub fn information_gain(parent: (f64, f64), left: (f64, f64), right: (f64, f64)) -> f64 {
    entropy(parent.0, parent.1) - split_impurity(entropy, left, right)
}

/// Gain ratio: information gain normalised by the split's intrinsic
/// information, the criterion C4.5 uses (one of the "standard splitting
/// strategies" the Predicate Enumerator rotates through, §2.2.2).
pub fn gain_ratio(parent: (f64, f64), left: (f64, f64), right: (f64, f64)) -> f64 {
    let gain = information_gain(parent, left, right);
    let n = parent.0 + parent.1;
    if n <= 0.0 {
        return 0.0;
    }
    let nl = left.0 + left.1;
    let nr = right.0 + right.1;
    let mut intrinsic = 0.0;
    for part in [nl, nr] {
        if part > 0.0 {
            let p = part / n;
            intrinsic -= p * p.log2();
        }
    }
    if intrinsic <= f64::EPSILON {
        0.0
    } else {
        gain / intrinsic
    }
}

/// Gini gain of a two-way split (decrease in Gini impurity).
pub fn gini_gain(parent: (f64, f64), left: (f64, f64), right: (f64, f64)) -> f64 {
    gini(parent.0, parent.1) - split_impurity(gini, left, right)
}

/// Weighted relative accuracy of a rule covering `covered_pos` positives and
/// `covered_neg` negatives out of a population with `total_pos` / `total_neg`:
/// `WRAcc = coverage × (precision − base_rate)`. This is the quality measure
/// of CN2-SD subgroup discovery (Lavrač et al. 2004, the paper's \[4\]).
pub fn weighted_relative_accuracy(
    covered_pos: f64,
    covered_neg: f64,
    total_pos: f64,
    total_neg: f64,
) -> f64 {
    let total = total_pos + total_neg;
    let covered = covered_pos + covered_neg;
    if total <= 0.0 || covered <= 0.0 {
        return 0.0;
    }
    let coverage = covered / total;
    let precision = covered_pos / covered;
    let base = total_pos / total;
    coverage * (precision - base)
}

/// Classification accuracy from a confusion-matrix tuple
/// `(true_pos, false_pos, true_neg, false_neg)`.
pub fn accuracy(tp: f64, fp: f64, tn: f64, fn_: f64) -> f64 {
    let n = tp + fp + tn + fn_;
    if n <= 0.0 {
        return 0.0;
    }
    (tp + tn) / n
}

/// F1 score from true/false positive/negative counts.
pub fn f1_score(tp: f64, fp: f64, fn_: f64) -> f64 {
    let denom = 2.0 * tp + fp + fn_;
    if denom <= 0.0 {
        return 0.0;
    }
    2.0 * tp / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(10.0, 0.0), 0.0);
        assert_eq!(gini(0.0, 10.0), 0.0);
        assert!((gini(5.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(gini(0.0, 0.0), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(10.0, 0.0), 0.0);
        assert!((entropy(5.0, 5.0) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(0.0, 0.0), 0.0);
        assert!(entropy(7.0, 3.0) > 0.0 && entropy(7.0, 3.0) < 1.0);
    }

    #[test]
    fn perfect_split_has_maximal_gain() {
        let parent = (5.0, 5.0);
        let ig = information_gain(parent, (5.0, 0.0), (0.0, 5.0));
        assert!((ig - 1.0).abs() < 1e-12);
        let gg = gini_gain(parent, (5.0, 0.0), (0.0, 5.0));
        assert!((gg - 0.5).abs() < 1e-12);
        let gr = gain_ratio(parent, (5.0, 0.0), (0.0, 5.0));
        assert!((gr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_has_zero_gain() {
        let parent = (6.0, 6.0);
        let ig = information_gain(parent, (3.0, 3.0), (3.0, 3.0));
        assert!(ig.abs() < 1e-12);
        let gg = gini_gain(parent, (3.0, 3.0), (3.0, 3.0));
        assert!(gg.abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_penalises_lopsided_splits() {
        let parent = (50.0, 50.0);
        // Splitting off a single positive example gives tiny gain but also a
        // tiny intrinsic value; the ratio must stay finite and small.
        let gr = gain_ratio(parent, (1.0, 0.0), (49.0, 50.0));
        assert!(gr.is_finite());
        assert!(gr < 0.2);
        // Degenerate: everything on one side.
        assert_eq!(gain_ratio(parent, (50.0, 50.0), (0.0, 0.0)), 0.0);
        assert_eq!(gain_ratio((0.0, 0.0), (0.0, 0.0), (0.0, 0.0)), 0.0);
    }

    #[test]
    fn wracc_behaviour() {
        // A rule that covers 50 of the 100 positives and nothing else:
        // coverage 0.25, precision 1.0, base rate 0.5 -> WRAcc 0.125.
        let w = weighted_relative_accuracy(50.0, 0.0, 100.0, 100.0);
        assert!((w - 0.125).abs() < 1e-9);
        // A rule matching the base rate is worthless.
        let w = weighted_relative_accuracy(10.0, 10.0, 100.0, 100.0);
        assert!(w.abs() < 1e-12);
        // A rule covering mostly negatives is penalised.
        assert!(weighted_relative_accuracy(1.0, 20.0, 50.0, 50.0) < 0.0);
        assert_eq!(weighted_relative_accuracy(0.0, 0.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn accuracy_and_f1() {
        assert_eq!(accuracy(5.0, 0.0, 5.0, 0.0), 1.0);
        assert_eq!(accuracy(0.0, 5.0, 0.0, 5.0), 0.0);
        assert_eq!(accuracy(0.0, 0.0, 0.0, 0.0), 0.0);
        assert_eq!(f1_score(5.0, 0.0, 0.0), 1.0);
        assert_eq!(f1_score(0.0, 3.0, 4.0), 0.0);
        assert!((f1_score(3.0, 1.0, 2.0) - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn split_impurity_weighted_average() {
        let v = split_impurity(gini, (2.0, 0.0), (0.0, 2.0));
        assert_eq!(v, 0.0);
        let v = split_impurity(gini, (1.0, 1.0), (1.0, 1.0));
        assert!((v - 0.5).abs() < 1e-12);
        assert_eq!(split_impurity(gini, (0.0, 0.0), (0.0, 0.0)), 0.0);
    }
}

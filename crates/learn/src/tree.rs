//! Binary decision trees over relational feature vectors.
//!
//! The Predicate Enumerator (paper §2.2.2) "builds a decision tree on each
//! candidate dataset Dᶜᵢ by labeling Dᶜᵢ as the positive class and F − Dᶜᵢ
//! as negative", using "standard splitting and pruning strategies (e.g.,
//! gini, gain ratio) to construct several trees". This module implements
//! those trees: numeric threshold and categorical equality splits, gini or
//! gain-ratio split selection, error-based pruning, and the extraction of
//! positive root-to-leaf paths as conjunctive rules — which the enumerator
//! then converts into the ranked predicates shown to the user.

use crate::features::{Dataset, FeatureSpace, FeatureValue};
use crate::metrics::{gain_ratio, gini_gain};
use dbwipes_storage::{Condition, ConjunctivePredicate};

/// Split-selection criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity decrease (CART-style).
    Gini,
    /// Gain ratio (C4.5-style).
    GainRatio,
}

/// Decision-tree training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Split-selection criterion.
    pub criterion: SplitCriterion,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of instances required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of instances allowed in a child node.
    pub min_leaf_size: usize,
    /// Minimum gain a split must achieve to be accepted.
    pub min_gain: f64,
    /// Maximum number of candidate thresholds evaluated per numeric feature
    /// (thresholds are taken at evenly spaced quantiles when a feature has
    /// more distinct values than this).
    pub max_thresholds: usize,
    /// Whether to apply error-based pruning after growth.
    pub prune: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            criterion: SplitCriterion::Gini,
            max_depth: 4,
            min_samples_split: 4,
            min_leaf_size: 2,
            min_gain: 1e-4,
            max_thresholds: 32,
            prune: true,
        }
    }
}

/// The test performed by an internal node; instances satisfying the test go
/// left, everything else (including missing values) goes right.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplitTest {
    /// `feature <= threshold`
    NumericLe(f64),
    /// `feature == category`
    CategoryEq(usize),
}

/// A node of the tree.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// A leaf holding its training class counts.
    Leaf {
        /// Positive training instances that reached the leaf.
        pos: usize,
        /// Negative training instances that reached the leaf.
        neg: usize,
    },
    /// An internal split node.
    Split {
        /// Feature index tested.
        feature: usize,
        /// The test.
        test: SplitTest,
        /// Subtree for instances satisfying the test.
        left: Box<TreeNode>,
        /// Subtree for the rest.
        right: Box<TreeNode>,
        /// Positive instances reaching this node (for pruning).
        pos: usize,
        /// Negative instances reaching this node (for pruning).
        neg: usize,
    },
}

impl TreeNode {
    fn counts(&self) -> (usize, usize) {
        match self {
            TreeNode::Leaf { pos, neg } | TreeNode::Split { pos, neg, .. } => (*pos, *neg),
        }
    }

    fn is_positive(&self) -> bool {
        let (pos, neg) = self.counts();
        pos > neg
    }

    fn training_errors(&self) -> usize {
        match self {
            TreeNode::Leaf { pos, neg } => {
                if pos > neg {
                    *neg
                } else {
                    *pos
                }
            }
            TreeNode::Split { left, right, .. } => left.training_errors() + right.training_errors(),
        }
    }
}

/// One step of a root-to-leaf path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathTest {
    /// `feature <= threshold`
    Le(f64),
    /// `feature > threshold`
    Gt(f64),
    /// `feature == category`
    Eq(usize),
    /// `feature != category`
    NotEq(usize),
}

/// A conjunctive rule extracted from a positive leaf: the path of tests from
/// the root plus the leaf's class counts.
#[derive(Debug, Clone)]
pub struct Rule {
    /// `(feature index, test)` conjuncts along the path.
    pub tests: Vec<(usize, PathTest)>,
    /// Positive training instances covered by the rule.
    pub pos: usize,
    /// Negative training instances covered by the rule.
    pub neg: usize,
}

impl Rule {
    /// Training precision of the rule.
    pub fn precision(&self) -> f64 {
        if self.pos + self.neg == 0 {
            0.0
        } else {
            self.pos as f64 / (self.pos + self.neg) as f64
        }
    }

    /// Converts the rule into a human-readable conjunctive predicate,
    /// merging multiple numeric bounds on the same feature into a single
    /// range condition.
    pub fn to_predicate(&self, space: &FeatureSpace) -> ConjunctivePredicate {
        // Per feature: tightest lower and upper numeric bound.
        let mut lower: Vec<Option<f64>> = vec![None; space.len()];
        let mut upper: Vec<Option<f64>> = vec![None; space.len()];
        let mut conditions: Vec<Condition> = Vec::new();
        for (feature, test) in &self.tests {
            match test {
                PathTest::Le(th) => {
                    let u = &mut upper[*feature];
                    *u = Some(u.map_or(*th, |cur: f64| cur.min(*th)));
                }
                PathTest::Gt(th) => {
                    let l = &mut lower[*feature];
                    *l = Some(l.map_or(*th, |cur: f64| cur.max(*th)));
                }
                PathTest::Eq(cat) => {
                    if let Some(c) = space.categorical_condition(*feature, *cat, true) {
                        conditions.push(c);
                    }
                }
                PathTest::NotEq(cat) => {
                    if let Some(c) = space.categorical_condition(*feature, *cat, false) {
                        conditions.push(c);
                    }
                }
            }
        }
        for (feature, def) in space.features().iter().enumerate() {
            let (lo, hi) = (lower[feature], upper[feature]);
            if lo.is_none() && hi.is_none() {
                continue;
            }
            conditions.push(Condition::Range {
                column: def.column.clone(),
                low: lo,
                low_inclusive: false,
                high: hi,
                high_inclusive: true,
            });
        }
        ConjunctivePredicate::new(conditions)
    }
}

/// A trained binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: TreeNode,
    config: TreeConfig,
    num_features: usize,
}

impl DecisionTree {
    /// Trains a tree on a dataset with boolean labels (`labels[i]` is the
    /// class of `dataset.instances[i]`).
    ///
    /// Panics if `labels.len() != dataset.len()`; the caller constructs both
    /// from the same row list.
    pub fn train(dataset: &Dataset, labels: &[bool], config: TreeConfig) -> DecisionTree {
        assert_eq!(dataset.len(), labels.len(), "labels must align with instances");
        let num_features = dataset.instances.first().map(|i| i.len()).unwrap_or(0);
        let indices: Vec<usize> = (0..dataset.len()).collect();
        let mut root = grow(dataset, labels, &indices, 0, &config, num_features);
        if config.prune {
            root = prune(root);
        }
        DecisionTree { root, config, num_features }
    }

    /// The training configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Number of features the tree was trained over.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn c(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => c(left) + c(right),
            }
        }
        c(&self.root)
    }

    /// Predicts the class of a feature vector.
    pub fn predict(&self, instance: &[FeatureValue]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { pos, neg } => return pos > neg,
                TreeNode::Split { feature, test, left, right, .. } => {
                    node = if satisfies(instance.get(*feature).copied(), *test) {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Training / holdout accuracy over a dataset.
    pub fn accuracy(&self, dataset: &Dataset, labels: &[bool]) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset
            .instances
            .iter()
            .zip(labels)
            .filter(|(inst, &label)| self.predict(inst) == label)
            .count();
        correct as f64 / dataset.len() as f64
    }

    /// Extracts one [`Rule`] per positive leaf. An all-positive tree with a
    /// single leaf yields one rule with no tests (the trivial predicate).
    pub fn positive_rules(&self) -> Vec<Rule> {
        let mut rules = Vec::new();
        let mut path = Vec::new();
        collect_rules(&self.root, &mut path, &mut rules);
        rules
    }
}

fn satisfies(value: Option<FeatureValue>, test: SplitTest) -> bool {
    match (value, test) {
        (Some(FeatureValue::Num(v)), SplitTest::NumericLe(th)) => v <= th,
        (Some(FeatureValue::Cat(c)), SplitTest::CategoryEq(cat)) => c == cat,
        // Missing values and type mismatches fail the test.
        _ => false,
    }
}

fn collect_rules(node: &TreeNode, path: &mut Vec<(usize, PathTest)>, rules: &mut Vec<Rule>) {
    match node {
        TreeNode::Leaf { pos, neg } => {
            if node.is_positive() {
                rules.push(Rule { tests: path.clone(), pos: *pos, neg: *neg });
            }
            let _ = (pos, neg);
        }
        TreeNode::Split { feature, test, left, right, .. } => {
            let (left_test, right_test) = match test {
                SplitTest::NumericLe(th) => (PathTest::Le(*th), PathTest::Gt(*th)),
                SplitTest::CategoryEq(c) => (PathTest::Eq(*c), PathTest::NotEq(*c)),
            };
            path.push((*feature, left_test));
            collect_rules(left, path, rules);
            path.pop();
            path.push((*feature, right_test));
            collect_rules(right, path, rules);
            path.pop();
        }
    }
}

fn grow(
    dataset: &Dataset,
    labels: &[bool],
    indices: &[usize],
    depth: usize,
    config: &TreeConfig,
    num_features: usize,
) -> TreeNode {
    let pos = indices.iter().filter(|&&i| labels[i]).count();
    let neg = indices.len() - pos;
    let leaf = TreeNode::Leaf { pos, neg };
    if pos == 0 || neg == 0 || depth >= config.max_depth || indices.len() < config.min_samples_split
    {
        return leaf;
    }

    let Some((feature, test, gain)) = best_split(dataset, labels, indices, config, num_features)
    else {
        return leaf;
    };
    if gain < config.min_gain {
        return leaf;
    }

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| satisfies(dataset.instances[i].get(feature).copied(), test));
    if left_idx.len() < config.min_leaf_size || right_idx.len() < config.min_leaf_size {
        return leaf;
    }

    let left = grow(dataset, labels, &left_idx, depth + 1, config, num_features);
    let right = grow(dataset, labels, &right_idx, depth + 1, config, num_features);
    TreeNode::Split { feature, test, left: Box::new(left), right: Box::new(right), pos, neg }
}

/// Finds the best `(feature, test, gain)` over all features, or `None` when
/// no valid split exists.
///
/// Split scoring is a columnar sweep: per feature, the numeric values are
/// sorted **once** and every candidate threshold's class counts come from a
/// prefix sum over that order (a threshold at boundary `b` puts exactly the
/// first `b` sorted values on the left), while categorical counts
/// accumulate in a single pass. This replaces the former
/// O(thresholds × |indices|) re-scan per threshold and selects exactly the
/// same split: thresholds, counts, scores and tie-breaking (first strictly
/// better wins, features ascending, thresholds ascending, categories in
/// first-seen order) are all unchanged.
fn best_split(
    dataset: &Dataset,
    labels: &[bool],
    indices: &[usize],
    config: &TreeConfig,
    num_features: usize,
) -> Option<(usize, SplitTest, f64)> {
    let total_pos = indices.iter().filter(|&&i| labels[i]).count() as f64;
    let total_neg = indices.len() as f64 - total_pos;
    let parent = (total_pos, total_neg);
    let score = |left: (f64, f64), right: (f64, f64)| match config.criterion {
        SplitCriterion::Gini => gini_gain(parent, left, right),
        SplitCriterion::GainRatio => gain_ratio(parent, left, right),
    };

    let mut best: Option<(usize, SplitTest, f64)> = None;
    let mut consider = |feature: usize, test: SplitTest, gain: f64| {
        if gain > best.as_ref().map(|b| b.2).unwrap_or(f64::NEG_INFINITY) {
            best = Some((feature, test, gain));
        }
    };

    for feature in 0..num_features {
        // Gather (value, label) pairs and per-category class counts for
        // this feature in one pass.
        let mut numeric: Vec<(f64, bool)> = Vec::new();
        let mut categories: Vec<usize> = Vec::new();
        let mut cat_counts: Vec<(f64, f64)> = Vec::new();
        for &i in indices {
            match dataset.instances[i].get(feature) {
                Some(FeatureValue::Num(v)) => numeric.push((*v, labels[i])),
                Some(FeatureValue::Cat(c)) => {
                    let slot = match categories.iter().position(|k| k == c) {
                        Some(slot) => slot,
                        None => {
                            categories.push(*c);
                            cat_counts.push((0.0, 0.0));
                            categories.len() - 1
                        }
                    };
                    if labels[i] {
                        cat_counts[slot].0 += 1.0;
                    } else {
                        cat_counts[slot].1 += 1.0;
                    }
                }
                _ => {}
            }
        }

        if !numeric.is_empty() {
            numeric.sort_by(|a, b| a.0.total_cmp(&b.0));
            // cum_pos[j] = positives among the first j sorted values.
            let mut cum_pos: Vec<usize> = Vec::with_capacity(numeric.len() + 1);
            cum_pos.push(0);
            for &(_, label) in &numeric {
                cum_pos.push(cum_pos.last().unwrap() + label as usize);
            }
            // (midpoint threshold, number of sorted values <= it). The
            // boundary count is re-derived from the threshold itself
            // rather than assumed to be j+1: between very close (or very
            // large) neighbours the midpoint can round up to the upper
            // value (or overflow to +inf), and the scored counts must
            // describe the partition `v <= th` actually makes.
            let mut thresholds: Vec<(f64, usize)> = Vec::new();
            for (j, w) in numeric.windows(2).enumerate() {
                if w[0].0 < w[1].0 {
                    let th = (w[0].0 + w[1].0) / 2.0;
                    let below = if th < w[1].0 {
                        j + 1
                    } else {
                        numeric.partition_point(|&(v, _)| v <= th)
                    };
                    thresholds.push((th, below));
                }
            }
            if thresholds.len() > config.max_thresholds {
                let step = thresholds.len() as f64 / config.max_thresholds as f64;
                thresholds = (0..config.max_thresholds)
                    .map(|k| thresholds[(k as f64 * step) as usize])
                    .collect();
            }
            for (th, below) in thresholds {
                let left_pos = cum_pos[below];
                let left = (left_pos as f64, (below - left_pos) as f64);
                let right = (total_pos - left.0, total_neg - left.1);
                consider(feature, SplitTest::NumericLe(th), score(left, right));
            }
        }

        for (cat, left) in categories.into_iter().zip(cat_counts) {
            let right = (total_pos - left.0, total_neg - left.1);
            consider(feature, SplitTest::CategoryEq(cat), score(left, right));
        }
    }
    best
}

/// Error-based pruning: collapse a split whenever classifying all its
/// instances with the majority class makes no more training errors than the
/// subtree does.
fn prune(node: TreeNode) -> TreeNode {
    match node {
        TreeNode::Leaf { .. } => node,
        TreeNode::Split { feature, test, left, right, pos, neg } => {
            let left = prune(*left);
            let right = prune(*right);
            let subtree_errors = left.training_errors() + right.training_errors();
            let collapsed_errors = pos.min(neg);
            if collapsed_errors <= subtree_errors {
                TreeNode::Leaf { pos, neg }
            } else {
                TreeNode::Split {
                    feature,
                    test,
                    left: Box::new(left),
                    right: Box::new(right),
                    pos,
                    neg,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSpace;
    use dbwipes_storage::{DataType, RowId, Schema, Table, Value};

    /// Builds a sensor-style table where sensor 15 with low voltage produces
    /// anomalously high temperatures (the ground-truth "error cause").
    fn sensor_table(n: usize) -> (Table, Vec<bool>) {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("voltage", DataType::Float),
            ("temp", DataType::Float),
            ("room", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        let mut labels = Vec::new();
        for i in 0..n {
            let sensor = (i % 20) as i64;
            let broken = sensor == 15;
            let voltage = if broken { 1.9 } else { 2.6 + (i % 5) as f64 * 0.05 };
            let temp = if broken { 110.0 + (i % 10) as f64 } else { 18.0 + (i % 8) as f64 };
            let room = if i % 2 == 0 { "lab" } else { "kitchen" };
            t.push_row(vec![
                Value::Int(sensor),
                Value::Float(voltage),
                Value::Float(temp),
                Value::str(room),
            ])
            .unwrap();
            labels.push(broken);
        }
        (t, labels)
    }

    fn extract(t: &Table) -> (FeatureSpace, Dataset) {
        let rows: Vec<RowId> = t.visible_row_ids().collect();
        let space = FeatureSpace::build_excluding(t, &["temp".into()], &rows);
        let ds = space.extract(t, &rows);
        (space, ds)
    }

    #[test]
    fn learns_the_broken_sensor_with_both_criteria() {
        let (t, labels) = sensor_table(200);
        let (space, ds) = extract(&t);
        for criterion in [SplitCriterion::Gini, SplitCriterion::GainRatio] {
            let tree = DecisionTree::train(
                &ds,
                &labels,
                TreeConfig { criterion, ..TreeConfig::default() },
            );
            assert!(tree.accuracy(&ds, &labels) > 0.95, "{criterion:?}");
            assert!(tree.depth() >= 1);
            assert!(tree.leaf_count() >= 2);
            let rules = tree.positive_rules();
            assert!(!rules.is_empty(), "{criterion:?}");
            // The learned predicate should reference the broken sensor id or
            // its low voltage.
            let pred = rules[0].to_predicate(&space);
            let text = pred.to_string();
            assert!(
                text.contains("sensorid") || text.contains("voltage"),
                "unexpected predicate {text}"
            );
            assert!(rules[0].precision() > 0.9);
        }
    }

    #[test]
    fn pure_datasets_yield_single_leaf() {
        let (t, _) = sensor_table(50);
        let (_, ds) = extract(&t);
        let all_pos = vec![true; ds.len()];
        let tree = DecisionTree::train(&ds, &all_pos, TreeConfig::default());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.positive_rules().len(), 1);
        assert!(tree.positive_rules()[0].tests.is_empty());
        assert_eq!(tree.accuracy(&ds, &all_pos), 1.0);

        let all_neg = vec![false; ds.len()];
        let tree = DecisionTree::train(&ds, &all_neg, TreeConfig::default());
        assert!(tree.positive_rules().is_empty());
    }

    #[test]
    fn max_depth_and_min_leaf_are_respected() {
        let (t, labels) = sensor_table(200);
        let (_, ds) = extract(&t);
        let tree =
            DecisionTree::train(&ds, &labels, TreeConfig { max_depth: 1, ..TreeConfig::default() });
        assert!(tree.depth() <= 1);
        let tree = DecisionTree::train(
            &ds,
            &labels,
            TreeConfig { min_samples_split: 1000, ..TreeConfig::default() },
        );
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.num_features(), ds.instances[0].len());
        assert_eq!(tree.config().max_depth, TreeConfig::default().max_depth);
    }

    #[test]
    fn missing_values_follow_the_negative_branch() {
        let (t, labels) = sensor_table(100);
        let (_, ds) = extract(&t);
        let tree = DecisionTree::train(&ds, &labels, TreeConfig::default());
        let missing = vec![FeatureValue::Missing; tree.num_features()];
        // Must not panic; missing everything should land in the majority
        // (negative) region for this data.
        assert!(!tree.predict(&missing));
    }

    #[test]
    fn rules_merge_numeric_bounds_into_ranges() {
        // Positive iff 10 < x <= 20, forcing two numeric splits on the same
        // feature along the positive path.
        let schema = Schema::of(&[("x", DataType::Float)]);
        let mut t = Table::new("t", schema).unwrap();
        let mut labels = Vec::new();
        for i in 0..200 {
            let x = (i % 40) as f64;
            t.push_row(vec![Value::Float(x)]).unwrap();
            labels.push(x > 10.0 && x <= 20.0);
        }
        let rows: Vec<RowId> = t.visible_row_ids().collect();
        let space = FeatureSpace::build(&t, &["x".into()], &rows, 8);
        let ds = space.extract(&t, &rows);
        let tree = DecisionTree::train(
            &ds,
            &labels,
            TreeConfig { max_depth: 6, min_gain: 1e-9, ..TreeConfig::default() },
        );
        assert!(tree.accuracy(&ds, &labels) > 0.95);
        let rules = tree.positive_rules();
        assert!(!rules.is_empty());
        let pred = rules[0].to_predicate(&space);
        // A single range condition on x, not two separate conditions.
        assert_eq!(pred.complexity(), 1);
        assert!(pred.to_string().contains("x"));
    }

    #[test]
    fn adjacent_float_values_score_the_partition_actually_made() {
        // Feature x takes two adjacent floats whose midpoint rounds UP to
        // the upper value (1+2⁻⁵² vs 1+2·2⁻⁵²: the exact midpoint ties to
        // the even mantissa), so `v <= th` puts BOTH values on the left —
        // a split there separates nothing. The scored counts must describe
        // that real partition: were they assumed from the threshold's
        // construction index, x would score a phantom perfect split,
        // outrank the genuinely separating feature y, and then collapse to
        // a leaf when the actual partition leaves the right child empty.
        let a = f64::from_bits(1.0f64.to_bits() + 1);
        let b = f64::from_bits(1.0f64.to_bits() + 2);
        let th = (a + b) / 2.0;
        assert_eq!(th, b, "midpoint rounds up for this pair");
        let schema = Schema::of(&[("x", DataType::Float), ("y", DataType::Float)]);
        let mut t = Table::new("t", schema).unwrap();
        let mut labels = Vec::new();
        for i in 0..40 {
            let broken = i % 2 == 0;
            // y separates almost perfectly (2 stragglers keep its gain
            // below x's phantom-perfect score).
            let y = if broken == (i % 20 != 0) { 10.0 + (i % 5) as f64 } else { 50.0 };
            t.push_row(vec![Value::Float(if broken { a } else { b }), Value::Float(y)]).unwrap();
            labels.push(broken);
        }
        let rows: Vec<RowId> = t.visible_row_ids().collect();
        let space = FeatureSpace::build(&t, &["x".into(), "y".into()], &rows, 8);
        let ds = space.extract(&t, &rows);
        let tree = DecisionTree::train(
            &ds,
            &labels,
            TreeConfig { min_gain: 1e-12, prune: false, ..TreeConfig::default() },
        );
        assert!(tree.depth() >= 1, "the separable feature y must be split on");
        assert!(tree.accuracy(&ds, &labels) > 0.9);
    }

    #[test]
    fn pruning_collapses_useless_splits() {
        let (t, labels) = sensor_table(120);
        let (_, ds) = extract(&t);
        let unpruned = DecisionTree::train(
            &ds,
            &labels,
            TreeConfig { prune: false, min_gain: 0.0, max_depth: 8, ..TreeConfig::default() },
        );
        let pruned = DecisionTree::train(
            &ds,
            &labels,
            TreeConfig { prune: true, min_gain: 0.0, max_depth: 8, ..TreeConfig::default() },
        );
        assert!(pruned.leaf_count() <= unpruned.leaf_count());
        assert!(pruned.accuracy(&ds, &labels) >= 0.95);
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn mismatched_labels_panic() {
        let (t, _) = sensor_table(10);
        let (_, ds) = extract(&t);
        DecisionTree::train(&ds, &[true], TreeConfig::default());
    }
}

//! CN2-SD style subgroup discovery.
//!
//! The Dataset Enumerator "extend\[s\] the cleaned D′ using subgroup discovery
//! algorithms to find groups of inputs that highly influence ε. Subgroup
//! discovery is a variant of decision tree classifiers that find
//! descriptions of large subgroups that have the same class value in a
//! dataset" (paper §2.2.2, citing Lavrač et al.'s CN2-SD \[4\]).
//!
//! This module implements a beam-search rule learner with the CN2-SD
//! weighted covering scheme: rules are conjunctions of attribute tests
//! scored by weighted relative accuracy (WRAcc); once a rule is accepted,
//! the weight of the positive examples it covers is decayed so subsequent
//! rules describe *different* parts of the positive class.

use crate::features::{Dataset, FeatureSpace, FeatureValue};
use crate::metrics::weighted_relative_accuracy;
use crate::tree::{PathTest, Rule};
use dbwipes_storage::{ConjunctivePredicate, RowSet};

/// Configuration of the subgroup-discovery search.
#[derive(Debug, Clone, Copy)]
pub struct SubgroupConfig {
    /// Number of candidate rules kept per beam-search level.
    pub beam_width: usize,
    /// Maximum number of conjuncts per rule.
    pub max_conditions: usize,
    /// Maximum number of subgroups returned.
    pub max_rules: usize,
    /// Number of candidate thresholds per numeric feature.
    pub thresholds_per_feature: usize,
    /// Multiplicative weight decay applied to covered positive examples
    /// between rules (CN2-SD's "multiplicative weighting").
    pub covered_weight_decay: f64,
    /// Minimum (unweighted) number of positive examples a rule must cover.
    pub min_positive_coverage: usize,
    /// Also offer negated category tests (`feature != category`) to the
    /// beam search. Off by default: negations describe subgroups by what
    /// they are *not*, which reads worse and doubles the categorical
    /// branching factor — but they are the only way to describe an error
    /// population like "every room except the lab" as one conjunct.
    ///
    /// Their coverage bitmaps are composed from the positive tests'
    /// bitmaps (`has-a-category AND NOT eq`) instead of a second dataset
    /// scan, mirroring how the storage layer's `TriSet` algebra negates
    /// condition kernels.
    pub negated_category_tests: bool,
}

impl Default for SubgroupConfig {
    fn default() -> Self {
        SubgroupConfig {
            beam_width: 5,
            max_conditions: 3,
            max_rules: 5,
            thresholds_per_feature: 16,
            covered_weight_decay: 0.5,
            min_positive_coverage: 2,
            negated_category_tests: false,
        }
    }
}

/// A discovered subgroup: a conjunction of tests plus its quality.
#[derive(Debug, Clone)]
pub struct Subgroup {
    /// `(feature index, test)` conjuncts.
    pub tests: Vec<(usize, PathTest)>,
    /// Weighted relative accuracy at the time the rule was selected.
    pub wracc: f64,
    /// Unweighted positive examples covered.
    pub covered_pos: usize,
    /// Unweighted negative examples covered.
    pub covered_neg: usize,
}

impl Subgroup {
    /// Indices (into the dataset) of the instances the subgroup covers.
    pub fn covered_indices(&self, dataset: &Dataset) -> Vec<usize> {
        (0..dataset.len()).filter(|&i| covers(&self.tests, &dataset.instances[i])).collect()
    }

    /// True when the subgroup's tests match the instance.
    pub fn covers(&self, instance: &[FeatureValue]) -> bool {
        covers(&self.tests, instance)
    }

    /// Precision of the rule on the training data.
    pub fn precision(&self) -> f64 {
        if self.covered_pos + self.covered_neg == 0 {
            0.0
        } else {
            self.covered_pos as f64 / (self.covered_pos + self.covered_neg) as f64
        }
    }

    /// Converts the subgroup into a human-readable conjunctive predicate.
    pub fn to_predicate(&self, space: &FeatureSpace) -> ConjunctivePredicate {
        Rule { tests: self.tests.clone(), pos: self.covered_pos, neg: self.covered_neg }
            .to_predicate(space)
    }
}

fn covers(tests: &[(usize, PathTest)], instance: &[FeatureValue]) -> bool {
    tests.iter().all(|(feature, test)| test_covers(*feature, test, instance))
}

/// One test of a rule against one instance (missing values and type
/// mismatches fail).
fn test_covers(feature: usize, test: &PathTest, instance: &[FeatureValue]) -> bool {
    match (instance.get(feature), test) {
        (Some(FeatureValue::Num(v)), PathTest::Le(th)) => *v <= *th,
        (Some(FeatureValue::Num(v)), PathTest::Gt(th)) => *v > *th,
        (Some(FeatureValue::Cat(c)), PathTest::Eq(cat)) => c == cat,
        (Some(FeatureValue::Cat(c)), PathTest::NotEq(cat)) => c != cat,
        _ => false,
    }
}

/// Enumerates the single-condition building blocks used by the beam search.
fn candidate_tests(dataset: &Dataset, config: &SubgroupConfig) -> Vec<(usize, PathTest)> {
    let num_features = dataset.instances.first().map(|i| i.len()).unwrap_or(0);
    let mut tests = Vec::new();
    for feature in 0..num_features {
        let mut numeric: Vec<f64> = Vec::new();
        let mut categories: Vec<usize> = Vec::new();
        for inst in &dataset.instances {
            match inst.get(feature) {
                Some(FeatureValue::Num(v)) => numeric.push(*v),
                Some(FeatureValue::Cat(c)) if !categories.contains(c) => categories.push(*c),
                _ => {}
            }
        }
        if !numeric.is_empty() {
            numeric.sort_by(|a, b| a.total_cmp(b));
            numeric.dedup();
            let k = config.thresholds_per_feature.max(1);
            let step = (numeric.len() as f64 / (k + 1) as f64).max(1.0);
            let mut seen = Vec::new();
            for q in 1..=k {
                let idx = ((q as f64 * step) as usize).min(numeric.len() - 1);
                let th = numeric[idx];
                if seen.contains(&th.to_bits()) {
                    continue;
                }
                seen.push(th.to_bits());
                tests.push((feature, PathTest::Le(th)));
                tests.push((feature, PathTest::Gt(th)));
            }
        }
        for c in categories {
            tests.push((feature, PathTest::Eq(c)));
        }
    }
    tests
}

/// Runs CN2-SD subgroup discovery over a labelled dataset.
///
/// `labels[i]` marks instance `i` as a member of the target class (in
/// DBWipes: a suspected error tuple). Returns up to `max_rules` subgroups
/// ordered by discovery (each subsequent rule focuses on positives not yet
/// covered).
pub fn discover_subgroups(
    dataset: &Dataset,
    labels: &[bool],
    config: &SubgroupConfig,
) -> Vec<Subgroup> {
    assert_eq!(dataset.len(), labels.len(), "labels must align with instances");
    let n = dataset.len();
    if n == 0 {
        return Vec::new();
    }
    let mut candidates = candidate_tests(dataset, config);
    if candidates.is_empty() {
        return Vec::new();
    }
    let total_neg = labels.iter().filter(|&&l| !l).count() as f64;

    // Vectorized scoring substrate: one coverage bitmap per candidate test
    // (computed once — weights change between covering rounds, coverage
    // never does) plus the positive-class bitmap. A rule's coverage is then
    // the intersection of its tests' bitmaps, and its class counts are
    // popcounts instead of a per-instance conjunction walk.
    let mut candidate_sets: Vec<RowSet> = candidates
        .iter()
        .map(|(feature, test)| {
            let mut set = RowSet::empty(n);
            for (i, inst) in dataset.instances.iter().enumerate() {
                if test_covers(*feature, test, inst) {
                    set.insert(i);
                }
            }
            set
        })
        .collect();
    if config.negated_category_tests {
        // `feature != c` covers exactly the instances that carry *some*
        // category at the feature but not `c` — so its bitmap is composed
        // from the already-built `Eq` bitmap by boolean algebra
        // (has-category AND NOT eq) instead of another dataset scan.
        let num_features = dataset.instances.first().map(|i| i.len()).unwrap_or(0);
        let mut categorical: Vec<RowSet> = vec![RowSet::empty(n); num_features];
        for (i, inst) in dataset.instances.iter().enumerate() {
            for (f, v) in inst.iter().enumerate() {
                if matches!(v, FeatureValue::Cat(_)) {
                    categorical[f].insert(i);
                }
            }
        }
        let negated: Vec<((usize, PathTest), RowSet)> = candidates
            .iter()
            .zip(&candidate_sets)
            .filter_map(|((feature, test), eq_set)| match test {
                PathTest::Eq(c) => Some((
                    (*feature, PathTest::NotEq(*c)),
                    categorical[*feature].and(&eq_set.complement()),
                )),
                _ => None,
            })
            .collect();
        for (test, set) in negated {
            candidates.push(test);
            candidate_sets.push(set);
        }
    }
    let pos_set = RowSet::from_indices(n, (0..n).filter(|&i| labels[i]));

    // CN2-SD weighted covering: every positive starts with weight 1.
    let mut weights: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect();
    let mut subgroups: Vec<Subgroup> = Vec::new();

    for _ in 0..config.max_rules {
        let total_pos_w: f64 = weights.iter().sum();
        if total_pos_w < 1e-9 {
            break;
        }
        // Scores one rule's coverage bitmap under the current weights.
        let score_set = |covered: &RowSet| -> (f64, usize, usize) {
            let covered_pos_set = covered.and(&pos_set);
            let covered_pos = covered_pos_set.count_ones();
            let covered_neg = covered.count_ones() - covered_pos;
            let mut covered_pos_w = 0.0;
            for i in covered_pos_set.iter() {
                covered_pos_w += weights[i];
            }
            let wracc = weighted_relative_accuracy(
                covered_pos_w,
                covered_neg as f64,
                total_pos_w,
                total_neg,
            );
            (wracc, covered_pos, covered_neg)
        };

        // (rule tests, coverage, wracc, covered positives, covered negatives)
        type ScoredRule = (Vec<(usize, PathTest)>, RowSet, f64, usize, usize);
        let mut beam: Vec<(Vec<(usize, PathTest)>, RowSet)> = vec![(Vec::new(), RowSet::full(n))];
        let mut best: Option<(Subgroup, RowSet)> = None;
        for _level in 0..config.max_conditions {
            let mut expansions: Vec<ScoredRule> = Vec::new();
            for (tests, covered) in &beam {
                for (ci, cand) in candidates.iter().enumerate() {
                    if tests.iter().any(|t| t == cand) {
                        continue;
                    }
                    let extended_set = covered.and(&candidate_sets[ci]);
                    let (wracc, cp, cn) = score_set(&extended_set);
                    if cp < config.min_positive_coverage {
                        continue;
                    }
                    let mut extended = tests.clone();
                    extended.push(*cand);
                    expansions.push((extended, extended_set, wracc, cp, cn));
                }
            }
            if expansions.is_empty() {
                break;
            }
            expansions.sort_by(|a, b| b.2.total_cmp(&a.2));
            expansions.truncate(config.beam_width);
            // Track the overall best rule seen at any level, skipping rules
            // already returned in a previous covering round so that each
            // round describes a *new* subgroup even when a large subgroup's
            // decayed weight still dominates WRAcc.
            if let Some(top) = expansions.iter().find(|e| !subgroups.iter().any(|s| s.tests == e.0))
            {
                let better = match &best {
                    Some((b, _)) => top.2 > b.wracc,
                    None => true,
                };
                if better && top.2 > 0.0 {
                    best = Some((
                        Subgroup {
                            tests: top.0.clone(),
                            wracc: top.2,
                            covered_pos: top.3,
                            covered_neg: top.4,
                        },
                        top.1.clone(),
                    ));
                }
            }
            beam = expansions.into_iter().map(|(t, set, ..)| (t, set)).collect();
        }

        let Some((rule, rule_set)) = best else { break };
        // Decay the weight of covered positives so the next rule focuses on
        // what this rule missed.
        for i in rule_set.and(&pos_set).iter() {
            weights[i] *= config.covered_weight_decay;
        }
        // Stop if we re-discover an identical rule.
        if subgroups.iter().any(|s| s.tests == rule.tests) {
            break;
        }
        subgroups.push(rule);
    }
    subgroups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSpace;
    use dbwipes_storage::{DataType, RowId, Schema, Table, Value};

    /// Two distinct error subpopulations: sensor 15 (low voltage) and the
    /// kitchen sensors, mirroring the paper's health-data example where
    /// subgroup discovery finds "smokers over 65" and "heavy weight people"
    /// as two subgroups of high-risk patients.
    fn table() -> (Table, Vec<bool>, FeatureSpace, Dataset) {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("voltage", DataType::Float),
            ("room", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        let mut labels = Vec::new();
        for i in 0..300 {
            let sensor = (i % 30) as i64;
            let room = match i % 3 {
                0 => "lab",
                1 => "office",
                _ => "kitchen",
            };
            let broken = sensor == 15 || room == "kitchen";
            let voltage = if sensor == 15 { 1.8 } else { 2.5 + (i % 4) as f64 * 0.1 };
            t.push_row(vec![Value::Int(sensor), Value::Float(voltage), Value::str(room)]).unwrap();
            labels.push(broken);
        }
        let rows: Vec<RowId> = t.visible_row_ids().collect();
        let space = FeatureSpace::build_excluding(&t, &[], &rows);
        let ds = space.extract(&t, &rows);
        (t, labels, space, ds)
    }

    #[test]
    fn finds_both_error_subgroups() {
        let (_, labels, space, ds) = table();
        let subgroups = discover_subgroups(&ds, &labels, &SubgroupConfig::default());
        assert!(subgroups.len() >= 2, "found {} subgroups", subgroups.len());
        let texts: Vec<String> =
            subgroups.iter().map(|s| s.to_predicate(&space).to_string()).collect();
        let mentions_kitchen = texts.iter().any(|t| t.contains("kitchen"));
        let mentions_sensor = texts.iter().any(|t| t.contains("sensorid") || t.contains("voltage"));
        assert!(mentions_kitchen, "subgroups: {texts:?}");
        assert!(mentions_sensor, "subgroups: {texts:?}");
        for s in &subgroups {
            assert!(s.wracc > 0.0);
            assert!(s.precision() > 0.5);
            assert!(s.covered_pos >= 2);
            assert!(!s.covered_indices(&ds).is_empty());
        }
    }

    #[test]
    fn covering_decay_produces_diverse_rules() {
        let (_, labels, _, ds) = table();
        let subgroups = discover_subgroups(&ds, &labels, &SubgroupConfig::default());
        // No two returned rules may be identical.
        for i in 0..subgroups.len() {
            for j in (i + 1)..subgroups.len() {
                assert_ne!(subgroups[i].tests, subgroups[j].tests);
            }
        }
    }

    #[test]
    fn respects_max_rules_and_max_conditions() {
        let (_, labels, _, ds) = table();
        let config = SubgroupConfig { max_rules: 1, max_conditions: 1, ..Default::default() };
        let subgroups = discover_subgroups(&ds, &labels, &config);
        assert_eq!(subgroups.len(), 1);
        assert_eq!(subgroups[0].tests.len(), 1);
    }

    #[test]
    fn degenerate_inputs() {
        let (_, _, _, ds) = table();
        // No positives: nothing to describe.
        let none = vec![false; ds.len()];
        assert!(discover_subgroups(&ds, &none, &SubgroupConfig::default()).is_empty());
        // All positives: WRAcc can never exceed zero, so no rules either.
        let all = vec![true; ds.len()];
        assert!(discover_subgroups(&ds, &all, &SubgroupConfig::default()).is_empty());
        // Empty dataset.
        let empty = Dataset { instances: vec![], row_ids: vec![] };
        assert!(discover_subgroups(&empty, &[], &SubgroupConfig::default()).is_empty());
    }

    #[test]
    fn negated_category_tests_describe_everything_but_one_room() {
        // Errors are every room EXCEPT the lab — one NotEq conjunct, but
        // two Eq conjuncts (and max_conditions forbids two here).
        let schema = Schema::of(&[("room", DataType::Str)]);
        let mut t = Table::new("readings", schema).unwrap();
        let mut labels = Vec::new();
        for i in 0..120 {
            let room = match i % 3 {
                0 => "lab",
                1 => "office",
                _ => "kitchen",
            };
            t.push_row(vec![Value::str(room)]).unwrap();
            labels.push(room != "lab");
        }
        let rows: Vec<RowId> = t.visible_row_ids().collect();
        let space = FeatureSpace::build_excluding(&t, &[], &rows);
        let ds = space.extract(&t, &rows);

        let base = SubgroupConfig { max_conditions: 1, ..Default::default() };
        let with_neg = SubgroupConfig { negated_category_tests: true, ..base };
        let positive_only = discover_subgroups(&ds, &labels, &base);
        let negations = discover_subgroups(&ds, &labels, &with_neg);

        // With negations on, the single best rule is `room != lab`,
        // covering all 80 positives with perfect precision — something no
        // single positive test can do.
        let best = &negations[0];
        assert!(matches!(best.tests[..], [(_, PathTest::NotEq(_))]), "{:?}", best.tests);
        assert_eq!((best.covered_pos, best.covered_neg), (80, 0));
        assert_eq!(best.to_predicate(&space).to_string(), "room <> 'lab'");
        let best_positive = positive_only.iter().map(|s| s.wracc).fold(f64::NEG_INFINITY, f64::max);
        assert!(best.wracc > best_positive, "{} vs {best_positive}", best.wracc);
    }

    #[test]
    fn composed_negation_bitmaps_match_a_direct_scan() {
        // The NotEq coverage bitmaps are built by complementing the Eq
        // bitmaps; the discovered rules must therefore count coverage
        // exactly as the scalar `covers` walk does.
        let (_, labels, _, ds) = table();
        let config = SubgroupConfig { negated_category_tests: true, ..Default::default() };
        for sub in discover_subgroups(&ds, &labels, &config) {
            let covered = sub.covered_indices(&ds);
            let pos = covered.iter().filter(|&&i| labels[i]).count();
            assert_eq!((pos, covered.len() - pos), (sub.covered_pos, sub.covered_neg));
        }
    }

    #[test]
    fn covers_handles_missing_values() {
        let sub = Subgroup {
            tests: vec![(0, PathTest::Gt(1.0))],
            wracc: 0.1,
            covered_pos: 1,
            covered_neg: 0,
        };
        assert!(!sub.covers(&[FeatureValue::Missing]));
        assert!(sub.covers(&[FeatureValue::Num(2.0)]));
        assert!(!sub.covers(&[FeatureValue::Cat(1)]));
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn mismatched_labels_panic() {
        let (_, _, _, ds) = table();
        discover_subgroups(&ds, &[true], &SubgroupConfig::default());
    }
}
